#include "remote/lakelib.h"

#include <cstring>
#include <utility>

#include "base/logging.h"
#include "remote/wire.h"

namespace lake::remote {

using gpu::CuResult;
using gpu::DevicePtr;

LakeLib::LakeLib(channel::Channel &chan, shm::ShmArena &arena,
                 Doorbell doorbell)
    : chan_(chan), arena_(arena), doorbell_(std::move(doorbell))
{
    LAKE_ASSERT(doorbell_ != nullptr, "lakeLib requires a doorbell");
}

std::vector<std::uint8_t>
LakeLib::rpc(std::vector<std::uint8_t> cmd)
{
    using Dir = channel::Channel::Dir;
    ++calls_;
    std::uint32_t seq = next_seq_ - 1; // sequence used by the caller

    chan_.send(Dir::KernelToUser, std::move(cmd));
    doorbell_();
    std::vector<std::uint8_t> resp = chan_.recv(Dir::UserToKernel);

    LAKE_ASSERT(resp.size() >= 4, "short response from lakeD");
    std::uint32_t echo = 0;
    std::memcpy(&echo, resp.data(), sizeof(echo));
    LAKE_ASSERT(echo == seq, "response seq %u != expected %u", echo, seq);
    return resp;
}

gpu::CuResult
LakeLib::statusRpc(std::vector<std::uint8_t> cmd)
{
    std::vector<std::uint8_t> resp = rpc(std::move(cmd));
    Decoder dec(resp);
    dec.u32(); // seq echo
    return static_cast<CuResult>(dec.u32());
}

void
LakeLib::post(std::vector<std::uint8_t> cmd)
{
    // One-way command: failures surface at the next synchronizing call
    // (CUDA's asynchronous-error contract), so no response is awaited —
    // the caller only pays the send-side cost.
    ++calls_;
    chan_.send(channel::Channel::Dir::KernelToUser, std::move(cmd));
    doorbell_();
}

CuResult
LakeLib::cuMemAlloc(DevicePtr *out, std::size_t bytes)
{
    if (out == nullptr)
        return CuResult::InvalidValue;
    Encoder cmd = makeCommand(ApiId::CuMemAlloc, next_seq_++);
    cmd.u64(bytes);
    std::vector<std::uint8_t> resp = rpc(cmd.take());
    Decoder dec(resp);
    dec.u32(); // seq
    auto r = static_cast<CuResult>(dec.u32());
    *out = dec.u64();
    return r;
}

CuResult
LakeLib::cuMemFree(DevicePtr ptr)
{
    Encoder cmd = makeCommand(ApiId::CuMemFree, next_seq_++);
    cmd.u64(ptr);
    return statusRpc(cmd.take());
}

CuResult
LakeLib::cuMemcpyHtoD(DevicePtr dst, const void *src, std::size_t bytes)
{
    if (src == nullptr)
        return CuResult::InvalidValue;
    // Marshalled: the payload is copied into the command and again out
    // of it in lakeD — the double buffering §3 calls out.
    bytes_marshalled_ += bytes;
    Encoder cmd = makeCommand(ApiId::CuMemcpyHtoD, next_seq_++);
    cmd.u64(dst).bytes(src, bytes);
    return statusRpc(cmd.take());
}

CuResult
LakeLib::cuMemcpyDtoH(void *dst, DevicePtr src, std::size_t bytes)
{
    if (dst == nullptr)
        return CuResult::InvalidValue;
    bytes_marshalled_ += bytes;
    Encoder cmd = makeCommand(ApiId::CuMemcpyDtoH, next_seq_++);
    cmd.u64(src).u64(bytes);
    std::vector<std::uint8_t> resp = rpc(cmd.take());
    Decoder dec(resp);
    dec.u32(); // seq
    auto r = static_cast<CuResult>(dec.u32());
    std::size_t n = 0;
    const std::uint8_t *data = dec.bytes(&n);
    if (r == CuResult::Success) {
        if (n != bytes || data == nullptr)
            return CuResult::InvalidValue;
        std::memcpy(dst, data, n);
    }
    return r;
}

CuResult
LakeLib::cuMemcpyHtoDShm(DevicePtr dst, shm::ShmOffset src,
                         std::size_t bytes)
{
    Encoder cmd = makeCommand(ApiId::CuMemcpyHtoDShm, next_seq_++);
    cmd.u64(dst).u64(src).u64(bytes).u32(0);
    return statusRpc(cmd.take());
}

CuResult
LakeLib::cuMemcpyDtoHShm(shm::ShmOffset dst, DevicePtr src,
                         std::size_t bytes)
{
    Encoder cmd = makeCommand(ApiId::CuMemcpyDtoHShm, next_seq_++);
    cmd.u64(src).u64(dst).u64(bytes).u32(0);
    return statusRpc(cmd.take());
}

CuResult
LakeLib::cuMemcpyHtoDShmAsync(DevicePtr dst, shm::ShmOffset src,
                              std::size_t bytes, std::uint32_t stream)
{
    Encoder cmd = makeCommand(ApiId::CuMemcpyHtoDShmAsync, next_seq_++);
    cmd.u64(dst).u64(src).u64(bytes).u32(stream);
    post(cmd.take());
    return CuResult::Success;
}

CuResult
LakeLib::cuMemcpyDtoHShmAsync(shm::ShmOffset dst, DevicePtr src,
                              std::size_t bytes, std::uint32_t stream)
{
    Encoder cmd = makeCommand(ApiId::CuMemcpyDtoHShmAsync, next_seq_++);
    cmd.u64(src).u64(dst).u64(bytes).u32(stream);
    post(cmd.take());
    return CuResult::Success;
}

CuResult
LakeLib::cuLaunchKernel(const gpu::LaunchConfig &cfg, std::uint32_t stream)
{
    Encoder cmd = makeCommand(ApiId::CuLaunchKernel, next_seq_++);
    cmd.str(cfg.kernel);
    cmd.u32(cfg.grid_x).u32(cfg.block_x);
    cmd.u32(static_cast<std::uint32_t>(cfg.args.size()));
    for (std::uint64_t a : cfg.args)
        cmd.u64(a);
    cmd.u32(stream);
    post(cmd.take());
    return CuResult::Success;
}

CuResult
LakeLib::cuStreamSynchronize(std::uint32_t stream)
{
    Encoder cmd = makeCommand(ApiId::CuStreamSynchronize, next_seq_++);
    cmd.u32(stream);
    return statusRpc(cmd.take());
}

CuResult
LakeLib::cuCtxSynchronize()
{
    Encoder cmd = makeCommand(ApiId::CuCtxSynchronize, next_seq_++);
    return statusRpc(cmd.take());
}

CuResult
LakeLib::nvmlGetUtilization(RemoteUtilization *out)
{
    if (out == nullptr)
        return CuResult::InvalidValue;
    Encoder cmd = makeCommand(ApiId::NvmlGetUtilization, next_seq_++);
    std::vector<std::uint8_t> resp = rpc(cmd.take());
    Decoder dec(resp);
    dec.u32(); // seq
    auto r = static_cast<CuResult>(dec.u32());
    out->gpu = dec.f32();
    out->memory = dec.f32();
    return r;
}

Result<std::vector<std::uint8_t>>
LakeLib::highLevelCall(const std::string &name,
                       const std::vector<std::uint8_t> &args)
{
    Encoder cmd = makeCommand(ApiId::HighLevelCall, next_seq_++);
    cmd.str(name);
    // Args ride verbatim after the name; the handler owns their format.
    std::vector<std::uint8_t> buf = cmd.take();
    buf.insert(buf.end(), args.begin(), args.end());

    std::vector<std::uint8_t> resp = rpc(std::move(buf));
    Decoder dec(resp);
    dec.u32(); // seq
    auto r = static_cast<CuResult>(dec.u32());
    if (r != CuResult::Success) {
        return Result<std::vector<std::uint8_t>>(
            Status(Code::NotFound, std::string("high-level API '") + name +
                                       "' failed: " + cuResultName(r)));
    }
    // Hand back the remainder of the response after seq + status.
    std::vector<std::uint8_t> payload(resp.begin() + 8, resp.end());
    return Result<std::vector<std::uint8_t>>(std::move(payload));
}

} // namespace lake::remote
