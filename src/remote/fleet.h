#ifndef LAKE_REMOTE_FLEET_H
#define LAKE_REMOTE_FLEET_H

/**
 * @file
 * Sharded lakeD: K worker shards fronting an N-device fleet
 * (DESIGN.md §13).
 *
 * Each shard is a complete remoting stack — its own virtual clock,
 * lakeShm arena, command channel, daemon and lakeLib — owning the
 * device subset {i : i % shards == shard}. Shards are independent
 * failure domains: remoting health (the degraded latch and its
 * counters) lives per shard in ShardHealth, so one sick device cannot
 * force the whole fleet onto the CPU (the pre-fleet Lake-global latch
 * did exactly that).
 *
 * The FleetRouter extends the Fig. 3 policy across devices: one
 * UtilSmoother per device (policy::FleetPlacementPolicy), a pending
 * batch-depth signal per device, and sticky per-key placement so a
 * registry's captures keep hitting the device that holds its model.
 *
 * Lock order: policy mutex -> shard mutex (the placement policy's
 * probes lock the owning shard to issue the remoted NVML query). The
 * router's own map mutex is leaf-level and never held across either.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/time.h"
#include "channel/channel.h"
#include "gpu/fleet.h"
#include "policy/policy.h"
#include "remote/daemon.h"
#include "remote/lakelib.h"
#include "shm/arena.h"

namespace lake::remote {

/**
 * One shard's remoting-health state: the degraded latch and failure
 * counters that used to live Lake-globally. core::Lake reuses this for
 * its own (single) lane, so fleet and non-fleet paths share one
 * latching implementation.
 */
struct ShardHealth
{
    /** Remoting failures since the last success (observer thread). */
    std::size_t consecutive_failures = 0;
    /** True once degraded mode latched. */
    std::atomic<bool> degraded{false};
    /** Inference dispatches forced onto the CPU by degradation. */
    std::atomic<std::uint64_t> fallbacks{0};

    /**
     * Failure-observer body: a success resets the streak, a failure
     * extends it and latches `degraded` at @p threshold (0 disables
     * latching). @p who names the lane in the warning log.
     */
    void observe(const Status &s, std::size_t threshold, const char *who);

    /** Operator re-arm after the path is repaired. */
    void
    reset()
    {
        consecutive_failures = 0;
        degraded.store(false, std::memory_order_relaxed);
    }
};

/** Per-shard construction knobs (a slice of core::LakeConfig). */
struct ShardParams
{
    channel::Kind channel = channel::Kind::Netlink;
    std::size_t shm_bytes = 128ull << 20;
    std::size_t degrade_threshold = 3;
    RetryPolicy retry;
    PipelineConfig pipeline;
};

/**
 * One lakeD worker shard: a full remoting stack over >= 1 devices.
 *
 * Shards own their clock — virtual time advances independently per
 * shard, and a fleet run's makespan is the max over shard clocks.
 * Callers serialize all traffic through one shard via mu(); the
 * activate() discipline then guarantees the daemon's active device
 * matches the caller's target before any command is issued.
 */
class LakeShard
{
  public:
    /**
     * @param index   shard id (diagnostics and routing)
     * @param devices devices this shard fronts, daemon-local order
     * @param params  remoting knobs
     */
    LakeShard(std::size_t index, std::vector<gpu::Device *> devices,
              const ShardParams &params);

    LakeShard(const LakeShard &) = delete;
    LakeShard &operator=(const LakeShard &) = delete;

    std::size_t index() const { return index_; }
    std::size_t deviceCount() const { return devs_.size(); }
    gpu::Device &device(std::size_t local) { return *devs_.at(local); }

    Clock &clock() { return clock_; }
    LakeLib &lib() { return lib_; }
    LakeDaemon &daemon() { return daemon_; }
    shm::ShmArena &arena() { return arena_; }
    channel::Channel &channel() { return channel_; }
    ShardHealth &health() { return health_; }

    /** Serializes all lib traffic through this shard. */
    std::mutex &mu() { return mu_; }

    /**
     * Makes daemon-local device @p local the active one (caller holds
     * mu()). A no-op when it already is — single-device shards
     * therefore never emit a CuSetDevice and their wire traffic is
     * bit-identical to the pre-fleet protocol.
     */
    gpu::CuResult activate(std::size_t local);

  private:
    std::size_t index_;
    std::vector<gpu::Device *> devs_;
    Clock clock_;
    shm::ShmArena arena_;
    channel::Channel channel_;
    LakeDaemon daemon_;
    LakeLib lib_;
    ShardHealth health_;
    std::size_t degrade_threshold_;
    /** Device lakeLib last activated (== daemon's active device). */
    std::size_t lib_active_ = 0;
    std::mutex mu_;
};

/**
 * The shard set over a DeviceFleet. Device i belongs to shard
 * i % shards at daemon-local index i / shards.
 */
class ShardFleet
{
  public:
    ShardFleet(gpu::DeviceFleet &fleet, std::size_t shards,
               const ShardParams &params);

    std::size_t size() const { return shards_.size(); }
    std::size_t deviceCount() const { return device_count_; }

    LakeShard &shard(std::size_t k) { return *shards_.at(k); }

    std::size_t shardOf(std::size_t device) const
    {
        return device % shards_.size();
    }
    std::size_t localIndex(std::size_t device) const
    {
        return device / shards_.size();
    }
    /** The shard fronting fleet device @p device. */
    LakeShard &shardFor(std::size_t device)
    {
        return *shards_[shardOf(device)];
    }

    /** Max over shard clocks: the fleet run's virtual wall time. */
    Nanos makespan() const;

    /** Total lakeLib commands issued across shards. */
    std::uint64_t totalCalls() const;

  private:
    std::vector<std::unique_ptr<LakeShard>> shards_;
    std::size_t device_count_;
};

/**
 * Placement routing: per-key sticky device placement driven by a
 * FleetPlacementPolicy whose probes issue real remoted NVML queries
 * through the owning shard.
 *
 * noteDispatch()/noteDone() are lock-free (relaxed atomics) so a
 * classifier running under its shard's mutex can report completions
 * without any lock-order entanglement with the policy or router maps.
 */
class FleetRouter
{
  public:
    FleetRouter(ShardFleet &fleet, policy::FleetPlacementPolicy::Config cfg);

    /**
     * The placement decision for @p key: consults the policy with
     * the key's sticky device, re-pins the key on migration.
     */
    policy::Placement placeFor(const std::string &key,
                               const policy::PolicyInput &in);

    /**
     * An ExecPolicy view of placeFor for registry @p key — drop it
     * into Registry::registerPolicy and the Fig. 3 plumbing routes
     * across the fleet with no call-site change.
     */
    std::unique_ptr<policy::ExecPolicy> policyFor(std::string key);

    /** The key's current sticky device (round-robin seeded). */
    std::size_t lastPlacement(const std::string &key);

    /** One batch of @p batch vectors dispatched to @p device. */
    void noteDispatch(std::size_t device, std::size_t batch);
    /** The dispatch completed (or failed). */
    void noteDone(std::size_t device);
    /** Dispatched-but-uncompleted batches on @p device. */
    std::size_t pendingDepth(std::size_t device) const;

    /** Sticky re-pins performed. */
    std::uint64_t migrations() const
    {
        return migrations_.load(std::memory_order_relaxed);
    }

    policy::FleetPlacementPolicy &policy() { return *policy_; }
    ShardFleet &shards() { return fleet_; }

    /**
     * Mirrors per-device state into name-keyed metrics lanes
     * ("fleet.dev<i>.util_permille", ".pending", ".launches") plus the
     * fleet_migrations counter; call right before exporting.
     */
    void publishMetrics();

  private:
    /** The remoted NVML probe for fleet device @p device. */
    policy::UtilProbe probeFor(std::size_t device);

    ShardFleet &fleet_;
    std::unique_ptr<policy::FleetPlacementPolicy> policy_;

    mutable std::mutex mu_; //!< guards keys_ / next_key_device_ (leaf)
    std::map<std::string, std::size_t> keys_;
    std::size_t next_key_device_ = 0;

    std::unique_ptr<std::atomic<std::size_t>[]> pending_;
    std::atomic<std::uint64_t> migrations_{0};
};

} // namespace lake::remote

#endif // LAKE_REMOTE_FLEET_H
