#include "remote/streampool.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lake::remote {
namespace {

/** Parses a size-like env var, returning @p fallback when unset/bad. */
std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v)
        return fallback;
    return static_cast<std::size_t>(parsed);
}

} // namespace

void
StreamingConfig::applyEnv()
{
    // LAKE_STREAMS both selects K and flips the master switch:
    // LAKE_STREAMS=4 enables 4-way streaming, LAKE_STREAMS=0 disables.
    // A value that does not parse is ignored outright: falling back to
    // a default here would flip `enabled` on a typo.
    if (const char *v = std::getenv("LAKE_STREAMS"); v != nullptr && *v) {
        char *end = nullptr;
        unsigned long long n = std::strtoull(v, &end, 10);
        if (end != v) {
            enabled = n > 0;
            if (n > 0)
                streams = static_cast<std::uint32_t>(n);
        }
    }
    pool_buffers = std::max<std::size_t>(1, envSize("LAKE_POOL_BUFFERS",
                                                    pool_buffers));
    class_bytes = std::max<std::size_t>(64, envSize("LAKE_POOL_CLASS_BYTES",
                                                    class_bytes));
}

StreamOrchestrator::StreamOrchestrator(LakeLib &lib, Clock &clock,
                                       StreamingConfig cfg)
    : lib_(lib), arena_(lib.arena()), clock_(clock), cfg_(cfg)
{
    if (cfg_.streams == 0)
        cfg_.streams = 1;
    if (cfg_.pool_buffers == 0)
        cfg_.pool_buffers = 1;
    if (cfg_.size_classes == 0)
        cfg_.size_classes = 1;
    // A class must hold at least one credit per stream. With fewer, a
    // depth-1-per-stream producer (the cipher/MLP consumers) would hit
    // a credit stall whose forced sync retires — and immediately
    // re-issues — a buffer belonging to a stream the caller has not
    // harvested yet, overwriting unread results with the next item's
    // input (the read-after-sync window never opens for that buffer).
    cfg_.pool_buffers = std::max<std::size_t>(cfg_.pool_buffers,
                                              cfg_.streams);

    // Carve the whole pool out of the arena once. These are the only
    // arena calls the orchestrator ever makes outside the destructor:
    // steady-state acquire/release just rotates the rings.
    buffers_.reserve(cfg_.size_classes * cfg_.pool_buffers);
    rings_.resize(cfg_.size_classes);
    for (std::size_t cls = 0; cls < cfg_.size_classes; ++cls) {
        std::size_t cap = cfg_.class_bytes << cls;
        Ring &ring = rings_[cls];
        ring.slots.resize(cfg_.pool_buffers, 0);
        for (std::size_t j = 0; j < cfg_.pool_buffers; ++j) {
            shm::ShmOffset off = arena_.alloc(cap);
            LAKE_ASSERT(off != shm::kNullOffset,
                        "streaming pool does not fit in lakeShm; shrink "
                        "LAKE_POOL_BUFFERS/LAKE_POOL_CLASS_BYTES");
            Buffer b;
            b.shm = off;
            b.capacity = cap;
            b.cls = static_cast<std::uint32_t>(cls);
            b.slot = static_cast<std::uint32_t>(buffers_.size());
            buffers_.push_back(b);
            ring.slots[ring.count++] = b.slot;
        }
    }
    window_start_.assign(cfg_.streams, clock_.now());

    auto &m = obs::Metrics::global();
    if (m.enabled()) {
        m.dma_pool_buffers.set(buffers_.size());
        m.dma_pool_free.set(buffers_.size());
    }
}

StreamOrchestrator::~StreamOrchestrator()
{
    drain();
    for (const Buffer &b : buffers_)
        arena_.free(b.shm);
}

int
StreamOrchestrator::classFor(std::size_t bytes) const
{
    for (std::size_t cls = 0; cls < cfg_.size_classes; ++cls)
        if (bytes <= (cfg_.class_bytes << cls))
            return static_cast<int>(cls);
    return -1;
}

StreamOrchestrator::Buffer *
StreamOrchestrator::popFree(int cls)
{
    Ring &ring = rings_[static_cast<std::size_t>(cls)];
    LAKE_ASSERT(ring.count > 0, "popFree on empty ring");
    std::uint32_t slot = ring.slots[ring.head];
    ring.head = (ring.head + 1) % ring.slots.size();
    --ring.count;
    Buffer *b = &buffers_[slot];
    b->held = true;
    b->in_flight = false;
    b->stream = 0;
    return b;
}

void
StreamOrchestrator::pushFree(std::uint32_t slot)
{
    Buffer &b = buffers_[slot];
    Ring &ring = rings_[b.cls];
    LAKE_ASSERT(ring.count < ring.slots.size(), "ring overflow");
    ring.slots[(ring.head + ring.count) % ring.slots.size()] = slot;
    ++ring.count;
    b.held = false;
    b.in_flight = false;
    b.stream = 0;
    b.stage_seq = 0;
    ++stats_.releases;
}

StreamOrchestrator::Buffer *
StreamOrchestrator::acquire(std::size_t bytes)
{
    int cls = classFor(bytes);
    if (cls < 0) {
        ++stats_.sheds;
        return nullptr;
    }
    auto &m = obs::Metrics::global();
    while (rings_[static_cast<std::size_t>(cls)].count == 0) {
        // Credit stall: the class is fully in flight. Wait (in virtual
        // time) for the stream owning its oldest staged buffer; the
        // sync retires that stream's buffers and replenishes the ring.
        const Buffer *oldest = nullptr;
        for (const Buffer &b : buffers_)
            if (b.in_flight && b.cls == static_cast<std::uint32_t>(cls) &&
                (oldest == nullptr || b.stage_seq < oldest->stage_seq))
                oldest = &b;
        if (oldest == nullptr) {
            // Every credit is held un-staged by the caller; blocking
            // would deadlock, so shed instead.
            ++stats_.sheds;
            return nullptr;
        }
        ++stats_.credit_stalls;
        Nanos t0 = clock_.now();
        syncStream(oldest->stream);
        Nanos stalled = clock_.now() - t0;
        stats_.stalled_ns += stalled;
        if (m.enabled()) {
            m.dma_credit_stall_ns.record(stalled);
            auto &tr = obs::Tracer::global();
            if (tr.enabled())
                tr.span(obs::Side::Kernel, "dma", "dma.credit_stall", t0,
                        stalled, obs::kNoId, "class",
                        static_cast<std::uint64_t>(cls), "stream",
                        oldest->stream);
        }
    }
    ++stats_.acquires;
    Buffer *b = popFree(cls);
    updateGauge();
    return b;
}

StreamOrchestrator::Buffer *
StreamOrchestrator::tryAcquire(std::size_t bytes)
{
    int cls = classFor(bytes);
    if (cls < 0 || rings_[static_cast<std::size_t>(cls)].count == 0) {
        ++stats_.sheds;
        return nullptr;
    }
    ++stats_.acquires;
    Buffer *b = popFree(cls);
    updateGauge();
    return b;
}

void
StreamOrchestrator::release(Buffer *b)
{
    LAKE_ASSERT(b != nullptr && b->held && !b->in_flight,
                "release of a buffer that is not held (staged buffers "
                "return via syncStream)");
    pushFree(b->slot);
    updateGauge();
}

void
StreamOrchestrator::bind(Buffer *b, gpu::StreamId s)
{
    if (!b->in_flight) {
        b->in_flight = true;
        b->held = false;
        b->stage_seq = next_stage_seq_++;
        b->stream = s;
    } else {
        LAKE_ASSERT(b->stream == s,
                    "a buffer's stages must share one stream");
    }
}

Status
StreamOrchestrator::stageIn(Buffer *b, gpu::DevicePtr dst, std::size_t bytes,
                            gpu::StreamId s)
{
    if (b == nullptr || bytes > b->capacity)
        return Status(Code::InvalidArgument, "stageIn exceeds capacity");
    ++stats_.stage_ins;
    bind(b, s);
    lib_.cuMemcpyHtoDShmAsync(dst, b->shm, bytes, s);
    return Status();
}

Status
StreamOrchestrator::stageOut(Buffer *b, gpu::DevicePtr src, std::size_t bytes,
                             gpu::StreamId s)
{
    if (b == nullptr || bytes > b->capacity)
        return Status(Code::InvalidArgument, "stageOut exceeds capacity");
    ++stats_.stage_outs;
    bind(b, s);
    lib_.cuMemcpyDtoHShmAsync(b->shm, src, bytes, s);
    return Status();
}

Status
StreamOrchestrator::gatherIn(Buffer *b, gpu::DevicePtr dst,
                             const void *const *srcs,
                             const std::size_t *lens, std::size_t n,
                             gpu::StreamId s)
{
    if (b == nullptr)
        return Status(Code::InvalidArgument, "gatherIn without a buffer");
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += lens[i];
    if (total > b->capacity)
        return Status(Code::InvalidArgument, "gatherIn exceeds capacity");
    auto *out = static_cast<std::uint8_t *>(arena_.at(b->shm));
    std::size_t off = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::memcpy(out + off, srcs[i], lens[i]);
        off += lens[i];
    }
    ++stats_.gathers;
    stats_.gathered_vectors += n;
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Kernel, "dma", "dma.gather", clock_.now(),
                   obs::kNoId, "vectors", n, "bytes", total);
    return stageIn(b, dst, total, s);
}

gpu::CuResult
StreamOrchestrator::syncStream(gpu::StreamId s)
{
    ++stats_.syncs;
    Nanos t0 = clock_.now();
    gpu::CuResult r = lib_.cuStreamSynchronize(s);
    if (r != gpu::CuResult::Success)
        ++stats_.sync_failures;
    // Retire every buffer bound to this stream — even when the sync
    // itself failed. A dropped or truncated response must not leak the
    // credit: the transfer either completed daemon-side or the whole
    // transport is degraded, and in both cases holding the buffer
    // hostage only turns one fault into an eventual pool deadlock.
    for (Buffer &b : buffers_)
        if (b.in_flight && b.stream == s)
            pushFree(b.slot);
    updateGauge();

    Nanos now = clock_.now();
    auto &m = obs::Metrics::global();
    if (m.enabled()) {
        if (s >= kStreamBase &&
            s < kStreamBase + static_cast<gpu::StreamId>(cfg_.streams)) {
            // Overlap ratio for this sync window: the share of the
            // window the caller did NOT spend blocked in this sync.
            // 1000‰ = perfect overlap (sync returned instantly).
            std::size_t idx = s - kStreamBase;
            Nanos window = now - window_start_[idx];
            Nanos blocked = now - t0;
            if (window > 0) {
                std::uint64_t permille = 1000 - 1000 * blocked / window;
                m.dma_overlap_permille.record(permille);
            }
            window_start_[idx] = now;
        }
        auto &tr = obs::Tracer::global();
        if (tr.enabled())
            tr.span(obs::Side::Kernel, "dma", "dma.sync", t0, now - t0,
                    obs::kNoId, "stream", s, "ok",
                    r == gpu::CuResult::Success ? 1 : 0);
    }
    return r;
}

gpu::CuResult
StreamOrchestrator::drain()
{
    gpu::CuResult first = gpu::CuResult::Success;
    // Streams can repeat in buffers_; sync each distinct one once.
    std::vector<gpu::StreamId> todo;
    for (const Buffer &b : buffers_)
        if (b.in_flight &&
            std::find(todo.begin(), todo.end(), b.stream) == todo.end())
            todo.push_back(b.stream);
    for (gpu::StreamId s : todo) {
        gpu::CuResult r = syncStream(s);
        if (first == gpu::CuResult::Success)
            first = r;
    }
    return first;
}

std::size_t
StreamOrchestrator::freeBuffers() const
{
    std::size_t n = 0;
    for (const Ring &ring : rings_)
        n += ring.count;
    return n;
}

void
StreamOrchestrator::updateGauge() const
{
    auto &m = obs::Metrics::global();
    if (m.enabled())
        m.dma_pool_free.set(freeBuffers());
}

void
StreamOrchestrator::publishMetrics() const
{
    auto &m = obs::Metrics::global();
    if (!m.enabled())
        return;
    // Counters mirror the always-on Stats (set, not add: publish is
    // idempotent and may be called repeatedly before export).
    m.dma_acquires.set(stats_.acquires);
    m.dma_releases.set(stats_.releases);
    m.dma_credit_stalls.set(stats_.credit_stalls);
    m.dma_sheds.set(stats_.sheds);
    m.dma_gathers.set(stats_.gathers);
    m.dma_gathered_vectors.set(stats_.gathered_vectors);
    m.dma_pool_buffers.set(buffers_.size());
    m.dma_pool_free.set(freeBuffers());
}

} // namespace lake::remote
