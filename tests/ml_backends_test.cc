// Tests for the CPU and LAKE-remoted GPU inference backends: result
// parity across engines, timing model sanity, crossover existence.

#include <gtest/gtest.h>

#include "core/lake.h"
#include "ml/backends.h"
#include "ml/gpu_kernels.h"

namespace lake::ml {
namespace {

class BackendsTest : public ::testing::Test
{
  protected:
    BackendsTest() : rng_(21) { registerMlKernels(); }

    Matrix
    randomBatch(std::size_t n, std::size_t width)
    {
        Matrix x(n, width);
        for (std::size_t i = 0; i < x.size(); ++i)
            x.data()[i] = static_cast<float>(rng_.uniform(0.0, 1.0));
        return x;
    }

    core::Lake lake_;
    Rng rng_;
};

TEST_F(BackendsTest, CpuMlpMatchesModel)
{
    Mlp net(MlpConfig::linnos(), rng_);
    CpuMlp cpu(net, lake_.kernelCpu());
    Matrix x = randomBatch(16, 31);

    Nanos t0 = lake_.clock().now();
    std::vector<int> got = cpu.classify(x);
    EXPECT_GT(lake_.clock().now(), t0); // charged time
    EXPECT_EQ(got, net.classify(x));
}

TEST_F(BackendsTest, CpuInferenceCostsAboutFifteenMicros)
{
    // §7.1: "each inference on CPU takes around 15 us".
    Mlp net(MlpConfig::linnos(), rng_);
    CpuMlp cpu(net, lake_.kernelCpu());
    Matrix x = randomBatch(1, 31);
    Nanos t0 = lake_.clock().now();
    cpu.classify(x);
    double us = toUs(lake_.clock().now() - t0);
    EXPECT_GT(us, 10.0);
    EXPECT_LT(us, 20.0);
}

TEST_F(BackendsTest, LakeMlpMatchesCpuResults)
{
    Mlp net(MlpConfig::linnos(), rng_);
    LakeMlp gpu(net, lake_.lib(), /*sync_copy=*/false, 64);
    Matrix x = randomBatch(32, 31);
    EXPECT_EQ(gpu.classify(x), net.classify(x));
}

TEST_F(BackendsTest, LakeMlpSyncCopyCostsMore)
{
    Mlp net(MlpConfig::linnos(), rng_);
    LakeMlp async_mlp(net, lake_.lib(), false, 1024);
    LakeMlp sync_mlp(net, lake_.lib(), true, 1024);
    Matrix x = randomBatch(1024, 31);

    Nanos t0 = lake_.clock().now();
    async_mlp.classify(x);
    Nanos async_cost = lake_.clock().now() - t0;

    t0 = lake_.clock().now();
    sync_mlp.classify(x);
    Nanos sync_cost = lake_.clock().now() - t0;

    EXPECT_GT(sync_cost, async_cost);
}

TEST_F(BackendsTest, CrossoverExists)
{
    // Table 3: the GPU loses at batch 1 and wins at large batches.
    Mlp net(MlpConfig::linnos(), rng_);
    CpuMlp cpu(net, lake_.kernelCpu());
    LakeMlp gpu(net, lake_.lib(), false, 1024);

    auto time_of = [&](auto &engine, std::size_t batch) {
        Matrix x = randomBatch(batch, 31);
        Nanos t0 = lake_.clock().now();
        engine.classify(x);
        return lake_.clock().now() - t0;
    };

    EXPECT_LT(time_of(cpu, 1), time_of(gpu, 1));
    EXPECT_GT(time_of(cpu, 1024), time_of(gpu, 1024));
}

TEST_F(BackendsTest, LinnosCrossoverNearEight)
{
    // Table 3 row 1: crossover at 8 for the LinnOS model.
    Mlp net(MlpConfig::linnos(), rng_);
    CpuMlp cpu(net, lake_.kernelCpu());
    LakeMlp gpu(net, lake_.lib(), false, 64);

    auto time_of = [&](auto &engine, std::size_t batch) {
        Matrix x = randomBatch(batch, 31);
        Nanos t0 = lake_.clock().now();
        engine.classify(x);
        return lake_.clock().now() - t0;
    };

    std::size_t crossover = 0;
    for (std::size_t b = 1; b <= 64; b *= 2) {
        if (time_of(gpu, b) < time_of(cpu, b)) {
            crossover = b;
            break;
        }
    }
    EXPECT_GE(crossover, 2u);
    EXPECT_LE(crossover, 16u);
}

TEST_F(BackendsTest, CpuKnnMatchesModel)
{
    Knn knn(8, 3);
    std::vector<float> pt(8);
    for (int i = 0; i < 64; ++i) {
        for (auto &v : pt)
            v = static_cast<float>(rng_.uniform(-1.0, 1.0));
        knn.add(pt.data(), i % 2);
    }
    CpuKnn cpu(knn, lake_.kernelCpu());
    std::vector<float> q(4 * 8);
    for (auto &v : q)
        v = static_cast<float>(rng_.uniform(-1.0, 1.0));
    EXPECT_EQ(cpu.classify(q.data(), 4), knn.classifyBatch(q.data(), 4));
}

TEST_F(BackendsTest, LakeKnnMatchesCpu)
{
    Knn knn(16, 5);
    std::vector<float> pt(16);
    for (int i = 0; i < 200; ++i) {
        for (auto &v : pt)
            v = static_cast<float>(rng_.uniform(-1.0, 1.0));
        knn.add(pt.data(), i % 3);
    }
    LakeKnn gpu(knn, lake_.lib(), false, 64);
    std::vector<float> q(32 * 16);
    for (auto &v : q)
        v = static_cast<float>(rng_.uniform(-1.0, 1.0));
    EXPECT_EQ(gpu.classify(q.data(), 32), knn.classifyBatch(q.data(), 32));
}

TEST_F(BackendsTest, KleioServiceMatchesHostLstm)
{
    LstmConfig cfg;
    cfg.input = 1;
    cfg.hidden = 16;
    cfg.layers = 2;
    cfg.output = 2;
    cfg.seq_len = 8;
    Lstm net(cfg, rng_);
    KleioService kleio(lake_.daemon(), net);

    const std::size_t batch = 12;
    std::vector<float> seqs(batch * cfg.seq_len);
    for (auto &v : seqs)
        v = static_cast<float>(rng_.uniform(0.0, 1.0));

    std::vector<int> got = kleio.classify(lake_.lib(), seqs, batch);
    EXPECT_EQ(got, net.classifyBatch(seqs, batch));
}

TEST_F(BackendsTest, KleioChargesTensorFlowOverhead)
{
    LstmConfig cfg;
    cfg.input = 1;
    cfg.hidden = 8;
    cfg.layers = 2;
    cfg.output = 2;
    cfg.seq_len = 4;
    Lstm net(cfg, rng_);
    KleioService kleio(lake_.daemon(), net);

    std::vector<float> seqs(4, 0.5f);
    Nanos t0 = lake_.clock().now();
    kleio.classify(lake_.lib(), seqs, 1);
    EXPECT_GE(lake_.clock().now() - t0, KleioService::kTfCallOverhead);
}

TEST_F(BackendsTest, GpuBusyTimeRecorded)
{
    Mlp net(MlpConfig::linnos(), rng_);
    LakeMlp gpu(net, lake_.lib(), false, 64);
    Nanos busy_before = lake_.device().computeBusy().totalBusy();
    gpu.classify(randomBatch(32, 31));
    EXPECT_GT(lake_.device().computeBusy().totalBusy(), busy_before);
}

} // namespace
} // namespace lake::ml
