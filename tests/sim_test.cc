// Tests for the discrete-event simulator and its shared resources.

#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.h"
#include "sim/simulator.h"

namespace lake::sim {
namespace {

TEST(SimulatorTest, FiresInTimeOrder)
{
    Simulator s;
    std::vector<int> order;
    s.schedule(30, [&] { order.push_back(3); });
    s.schedule(10, [&] { order.push_back(1); });
    s.schedule(20, [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now(), 30u);
    EXPECT_EQ(s.eventsFired(), 3u);
}

TEST(SimulatorTest, FifoTieBreak)
{
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        s.schedule(100, [&order, i] { order.push_back(i); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsScheduleEvents)
{
    Simulator s;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            s.scheduleIn(5, chain);
    };
    s.schedule(0, chain);
    s.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(s.now(), 45u);
}

TEST(SimulatorTest, RunUntilStopsAndAdvances)
{
    Simulator s;
    int fired = 0;
    s.schedule(10, [&] { ++fired; });
    s.schedule(100, [&] { ++fired; });
    s.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(s.now(), 50u);
    EXPECT_FALSE(s.idle());
    s.run();
    EXPECT_EQ(fired, 2);
}

TEST(ResourceTest, SerializesWork)
{
    Simulator s;
    Resource r(s, "engine");
    std::vector<std::pair<Nanos, Nanos>> spans;
    auto record = [&](Nanos a, Nanos b) { spans.emplace_back(a, b); };

    s.schedule(0, [&] {
        r.submit(100, record);
        r.submit(50, record);
    });
    s.schedule(120, [&] { r.submit(30, record); });
    s.run();

    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].first, 0u);
    EXPECT_EQ(spans[0].second, 100u);
    EXPECT_EQ(spans[1].first, 100u);
    EXPECT_EQ(spans[1].second, 150u);
    // Third submission arrives while the queue is still draining.
    EXPECT_EQ(spans[2].first, 150u);
    EXPECT_EQ(spans[2].second, 180u);
}

TEST(ResourceTest, IdleResourceStartsImmediately)
{
    Simulator s;
    Resource r(s, "engine");
    Nanos started = ~0ull;
    s.schedule(500, [&] {
        r.submit(10, [&](Nanos a, Nanos) { started = a; });
    });
    s.run();
    EXPECT_EQ(started, 500u);
}

TEST(ResourceTest, UtilizationReflectsLoad)
{
    Simulator s;
    Resource r(s, "engine");
    s.schedule(0, [&] { r.submit(500); });
    s.schedule(1000, [&] {
        // Window [0,1000]: busy 500 of 1000.
        EXPECT_NEAR(r.utilization(1000), 50.0, 1e-9);
    });
    s.run();
}

} // namespace
} // namespace lake::sim
