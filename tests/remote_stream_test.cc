// Tests for the streaming DMA orchestration layer (DESIGN.md §10):
// pool recycling with zero steady-state arena traffic, credit-based
// flow control that stalls in virtual time, multi-stream
// transfer/compute overlap, scatter-gather coalescing, the
// never-used-stream synchronize guarantee, the deferred-async-free
// ordering fix, and the arena-highwater fragmentation regression.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/lake.h"
#include "crypto/engines.h"
#include "gpu/context.h"
#include "gpu/kernels.h"
#include "gpu/spec.h"
#include "ml/backends.h"
#include "ml/gpu_kernels.h"
#include "obs/metrics.h"
#include "remote/streampool.h"

namespace lake {
namespace {

using gpu::CuResult;
using remote::StreamingConfig;
using remote::StreamOrchestrator;

constexpr std::size_t kExtent = 16 << 10;

StreamingConfig
testConfig(std::uint32_t streams, std::size_t pool_buffers,
           std::size_t class_bytes = kExtent,
           std::size_t size_classes = 1)
{
    StreamingConfig sc;
    sc.enabled = true;
    sc.streams = streams;
    sc.pool_buffers = pool_buffers;
    sc.class_bytes = class_bytes;
    sc.size_classes = size_classes;
    return sc;
}

/** Fixed-cost kernel so overlap tests have compute to hide copies
 *  behind. Registered once; the registry replaces on re-add. */
void
registerStreamTestKernel()
{
    gpu::KernelRegistry::global().add(
        "stream_cost",
        [](gpu::Device &, const gpu::LaunchConfig &) {
            return CuResult::Success;
        },
        [](const gpu::Device &, const gpu::LaunchConfig &) -> Nanos {
            return 10_us;
        });
}

/** One staged round trip: HtoD + stream_cost kernel + DtoH. */
void
stageRoundTrip(core::Lake &lake, StreamOrchestrator &orch,
               gpu::DevicePtr dev, gpu::StreamId s)
{
    StreamOrchestrator::Buffer *buf = orch.acquire(kExtent);
    ASSERT_NE(buf, nullptr);
    ASSERT_TRUE(orch.stageIn(buf, dev, kExtent, s).isOk());
    gpu::LaunchConfig launch;
    launch.kernel = "stream_cost";
    launch.grid_x = 16;
    launch.block_x = 256;
    launch.arg(dev).arg(kExtent, nullptr);
    lake.lib().cuLaunchKernel(launch, s);
    ASSERT_TRUE(orch.stageOut(buf, dev, kExtent, s).isOk());
}

// ---------------------------------------------------------------------
// Buffer pool: recycling, zero steady-state arena traffic
// ---------------------------------------------------------------------

TEST(StreamPoolTest, SteadyStatePerformsNoArenaOrAllocRpcs)
{
    registerStreamTestKernel();
    core::Lake lake;
    StreamOrchestrator orch(lake.lib(), lake.clock(), testConfig(2, 4));

    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, kExtent), CuResult::Success);

    obs::Metrics::global().reset();
    obs::Metrics::global().setEnabled(true);
    std::size_t live0 = lake.arena().liveAllocs();

    for (int i = 0; i < 50; ++i)
        stageRoundTrip(lake, orch, dev,
                       orch.streamAt(static_cast<std::uint64_t>(i)));
    EXPECT_EQ(orch.drain(), CuResult::Success);

    // The timed loop touched the arena zero times: no allocs, no
    // frees, no change in live allocations.
    EXPECT_EQ(obs::Metrics::global().shm_allocs.get(), 0u);
    EXPECT_EQ(obs::Metrics::global().shm_frees.get(), 0u);
    EXPECT_EQ(lake.arena().liveAllocs(), live0);
    obs::Metrics::global().setEnabled(false);

    // Every credit came home.
    EXPECT_EQ(orch.freeBuffers(), orch.totalBuffers());
    EXPECT_EQ(orch.stats().acquires, 50u);
    EXPECT_EQ(orch.stats().releases, orch.stats().acquires);
    EXPECT_EQ(orch.stats().stage_ins, 50u);
    EXPECT_EQ(orch.stats().stage_outs, 50u);
}

TEST(StreamPoolTest, CarveOutReturnsToArenaOnDestruction)
{
    core::Lake lake;
    std::size_t used0 = lake.arena().used();
    std::size_t live0 = lake.arena().liveAllocs();
    {
        StreamOrchestrator orch(lake.lib(), lake.clock(),
                                testConfig(2, 4, 4096, 2));
        EXPECT_EQ(orch.totalBuffers(), 8u); // 2 classes x 4 buffers
        EXPECT_GT(lake.arena().used(), used0);
    }
    EXPECT_EQ(lake.arena().used(), used0);
    EXPECT_EQ(lake.arena().liveAllocs(), live0);
}

TEST(StreamPoolTest, SizeClassesServeSmallestSufficientCapacity)
{
    core::Lake lake;
    StreamOrchestrator orch(lake.lib(), lake.clock(),
                            testConfig(1, 2, 1024, 3));

    StreamOrchestrator::Buffer *small = orch.acquire(100);
    ASSERT_NE(small, nullptr);
    EXPECT_EQ(small->capacity, 1024u);
    StreamOrchestrator::Buffer *mid = orch.acquire(1500);
    ASSERT_NE(mid, nullptr);
    EXPECT_EQ(mid->capacity, 2048u);
    StreamOrchestrator::Buffer *large = orch.acquire(4096);
    ASSERT_NE(large, nullptr);
    EXPECT_EQ(large->capacity, 4096u);
    // Nothing fits 5000 bytes: shed, not assert.
    EXPECT_EQ(orch.acquire(5000), nullptr);
    EXPECT_GE(orch.stats().sheds, 1u);

    orch.release(small);
    orch.release(mid);
    orch.release(large);
    EXPECT_EQ(orch.freeBuffers(), orch.totalBuffers());
}

// ---------------------------------------------------------------------
// Credit-based flow control
// ---------------------------------------------------------------------

TEST(StreamPoolTest, AcquireStallsInVirtualTimeWhenRingIsDry)
{
    registerStreamTestKernel();
    core::Lake lake;
    StreamOrchestrator orch(lake.lib(), lake.clock(), testConfig(1, 2));
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, kExtent), CuResult::Success);

    // Stage both credits onto one stream; the third acquire must wait
    // for the oldest in-flight buffer's stream in virtual time.
    stageRoundTrip(lake, orch, dev, orch.streamAt(0));
    stageRoundTrip(lake, orch, dev, orch.streamAt(0));
    ASSERT_EQ(orch.stats().credit_stalls, 0u);

    Nanos t0 = lake.clock().now();
    StreamOrchestrator::Buffer *b = orch.acquire(kExtent);
    ASSERT_NE(b, nullptr);
    EXPECT_GE(orch.stats().credit_stalls, 1u);
    EXPECT_GT(lake.clock().now(), t0);
    EXPECT_GT(orch.stats().stalled_ns, 0u);

    orch.release(b);
    orch.drain();
}

TEST(StreamPoolTest, PoolBuffersClampedToStreamCount)
{
    core::Lake lake;
    // 8 streams but only 4 credits requested per class: with fewer
    // credits than streams, a stalled acquire() would recycle a buffer
    // whose stream the caller has not harvested yet. The constructor
    // clamps the credit budget up to the stream count.
    StreamOrchestrator orch(lake.lib(), lake.clock(), testConfig(8, 4));
    EXPECT_EQ(orch.config().pool_buffers, 8u);
    EXPECT_EQ(orch.totalBuffers(), 8u);
    // Enough credits is left alone.
    StreamOrchestrator deep(lake.lib(), lake.clock(), testConfig(2, 6));
    EXPECT_EQ(deep.config().pool_buffers, 6u);
}

TEST(StreamPoolTest, AcquireShedsWhenCallerHoldsEveryCredit)
{
    core::Lake lake;
    StreamOrchestrator orch(lake.lib(), lake.clock(), testConfig(1, 2));

    StreamOrchestrator::Buffer *a = orch.acquire(kExtent);
    StreamOrchestrator::Buffer *b = orch.acquire(kExtent);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);

    // Nothing is in flight, so blocking would deadlock: shed instead.
    EXPECT_EQ(orch.acquire(kExtent), nullptr);
    EXPECT_EQ(orch.tryAcquire(kExtent), nullptr);
    EXPECT_GE(orch.stats().sheds, 2u);

    orch.release(a);
    EXPECT_NE(orch.tryAcquire(kExtent), nullptr);
    orch.release(b);
}

// ---------------------------------------------------------------------
// Multi-stream pipelining
// ---------------------------------------------------------------------

/** Virtual time for @p items staged round trips on @p streams streams. */
Nanos
runStreamedWorkload(std::uint32_t streams, int items)
{
    registerStreamTestKernel();
    core::Lake lake;
    // Streaming rides the pipelined fast path: with one message per
    // command instead, channel cost dominates the caller's clock and
    // stream count barely matters.
    remote::PipelineConfig p;
    p.enabled = true;
    p.max_batch = 64;
    lake.lib().setPipeline(p);
    StreamOrchestrator orch(lake.lib(), lake.clock(),
                            testConfig(streams, 2 * streams));
    std::vector<gpu::DevicePtr> dev(streams, 0);
    for (auto &d : dev)
        EXPECT_EQ(lake.lib().cuMemAlloc(&d, kExtent), CuResult::Success);

    Nanos t0 = lake.clock().now();
    for (int i = 0; i < items; ++i) {
        std::uint32_t k = static_cast<std::uint32_t>(i) % streams;
        stageRoundTrip(lake, orch, dev[k], orch.streamAt(k));
    }
    orch.drain();
    return lake.clock().now() - t0;
}

TEST(StreamPoolTest, MultiStreamOverlapBeatsSingleStream)
{
    Nanos one = runStreamedWorkload(1, 32);
    Nanos four = runStreamedWorkload(4, 32);
    // Four streams overlap HtoD(i+1) with kernel(i) with DtoH(i-1);
    // one stream serializes them per item.
    EXPECT_LT(four, one);
    EXPECT_GT(static_cast<double>(one) / static_cast<double>(four), 1.2);
}

TEST(StreamPoolTest, StreamsRoundRobinAboveTheDefaultStream)
{
    core::Lake lake;
    StreamOrchestrator orch(lake.lib(), lake.clock(), testConfig(3, 3));
    // Stream 0 is left to legacy default-stream traffic.
    EXPECT_EQ(orch.streamAt(0), StreamOrchestrator::kStreamBase);
    EXPECT_EQ(orch.streamAt(3), StreamOrchestrator::kStreamBase);
    EXPECT_EQ(orch.streamAt(5), StreamOrchestrator::kStreamBase + 2);
    EXPECT_EQ(orch.nextStream(), StreamOrchestrator::kStreamBase);
    EXPECT_EQ(orch.nextStream(), StreamOrchestrator::kStreamBase + 1);
    EXPECT_EQ(orch.nextStream(), StreamOrchestrator::kStreamBase + 2);
    EXPECT_EQ(orch.nextStream(), StreamOrchestrator::kStreamBase);
}

// ---------------------------------------------------------------------
// Scatter-gather submission
// ---------------------------------------------------------------------

TEST(StreamPoolTest, GatherInCoalescesIntoOneCopyAndIsBitExact)
{
    core::Lake lake;
    StreamOrchestrator orch(lake.lib(), lake.clock(),
                            testConfig(1, 2, 4096));

    constexpr std::size_t kVecs = 16;
    constexpr std::size_t kVecBytes = 124;
    std::vector<std::vector<std::uint8_t>> vecs(kVecs);
    const void *srcs[kVecs];
    std::size_t lens[kVecs];
    for (std::size_t v = 0; v < kVecs; ++v) {
        vecs[v].resize(kVecBytes);
        for (std::size_t i = 0; i < kVecBytes; ++i)
            vecs[v][i] = static_cast<std::uint8_t>(v * 31 + i);
        srcs[v] = vecs[v].data();
        lens[v] = kVecBytes;
    }

    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, kVecs * kVecBytes),
              CuResult::Success);
    StreamOrchestrator::Buffer *buf = orch.acquire(kVecs * kVecBytes);
    ASSERT_NE(buf, nullptr);

    gpu::StreamId s = orch.streamAt(0);
    std::uint64_t calls0 = lake.lib().calls();
    ASSERT_TRUE(orch.gatherIn(buf, dev, srcs, lens, kVecs, s).isOk());
    // The whole batch went up as ONE strided copy.
    EXPECT_EQ(lake.lib().calls() - calls0, 1u);
    EXPECT_EQ(orch.stats().gathers, 1u);
    EXPECT_EQ(orch.stats().gathered_vectors, kVecs);
    ASSERT_EQ(orch.syncStream(s), CuResult::Success);

    // Read the device bytes back and compare with the concatenation.
    shm::ShmOffset check = lake.arena().alloc(kVecs * kVecBytes);
    ASSERT_NE(check, shm::kNullOffset);
    ASSERT_EQ(lake.lib().cuMemcpyDtoHShm(check, dev, kVecs * kVecBytes),
              CuResult::Success);
    const auto *got =
        static_cast<const std::uint8_t *>(lake.arena().at(check));
    for (std::size_t v = 0; v < kVecs; ++v)
        EXPECT_EQ(std::memcmp(got + v * kVecBytes, vecs[v].data(),
                              kVecBytes),
                  0)
            << "vector " << v;
    lake.arena().free(check);
}

// ---------------------------------------------------------------------
// Read-after-sync window
// ---------------------------------------------------------------------

TEST(StreamPoolTest, RetiredBufferReadableUntilNextAcquire)
{
    core::Lake lake;
    StreamOrchestrator orch(lake.lib(), lake.clock(), testConfig(1, 2));
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, kExtent), CuResult::Success);

    // Upload a pattern, then stage it back out through a pooled slot.
    std::vector<std::uint8_t> pattern(kExtent);
    for (std::size_t i = 0; i < kExtent; ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 13 + 5);
    ASSERT_EQ(lake.lib().cuMemcpyHtoD(dev, pattern.data(), kExtent),
              CuResult::Success);

    StreamOrchestrator::Buffer *buf = orch.acquire(kExtent);
    ASSERT_NE(buf, nullptr);
    gpu::StreamId s = orch.streamAt(0);
    ASSERT_TRUE(orch.stageOut(buf, dev, kExtent, s).isOk());
    ASSERT_EQ(orch.syncStream(s), CuResult::Success);

    // buf is back in the ring, but per the §10 contract its bytes stay
    // valid until the next acquire of the class.
    EXPECT_EQ(std::memcmp(lake.arena().at(buf->shm), pattern.data(),
                          kExtent),
              0);
}

// ---------------------------------------------------------------------
// Satellite 2: synchronizing never-used streams
// ---------------------------------------------------------------------

TEST(StreamSyncTest, NeverUsedStreamSyncDoesNotGrowTracking)
{
    core::Lake lake;
    gpu::GpuContext &ctx = lake.daemon().gpuContext();
    std::size_t tracked0 = ctx.trackedStreams();

    for (gpu::StreamId s : {7u, 123u, 4096u, 0xfffffffeu}) {
        EXPECT_EQ(lake.lib().cuStreamSynchronize(s), CuResult::Success);
        EXPECT_EQ(ctx.trackedStreams(), tracked0);
    }

    // Real queued work still creates exactly one timeline entry.
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 4096), CuResult::Success);
    shm::ShmOffset off = lake.arena().alloc(4096);
    ASSERT_NE(off, shm::kNullOffset);
    ASSERT_EQ(lake.lib().cuMemcpyHtoDShmAsync(dev, off, 4096, 5),
              CuResult::Success);
    ASSERT_EQ(lake.lib().cuStreamSynchronize(5), CuResult::Success);
    EXPECT_EQ(ctx.trackedStreams(), tracked0 + 1);
    lake.arena().free(off);
}

// ---------------------------------------------------------------------
// Satellite 6: deferred async frees order after the owning stream
// ---------------------------------------------------------------------

TEST(DeferredFreeTest, AsyncFreeWaitsForOwningStreamToDrain)
{
    gpu::Device device(gpu::DeviceSpec::a100());
    Clock clock;
    gpu::GpuContext ctx(device, clock);

    constexpr std::size_t kBytes = 1 << 20;
    gpu::DevicePtr p = 0;
    ASSERT_EQ(ctx.memAlloc(&p, kBytes), CuResult::Success);
    std::size_t used = device.memUsed();

    // Queue a long copy on stream 3, then free the buffer it reads.
    std::vector<std::uint8_t> host(kBytes, 0x77);
    ASSERT_EQ(ctx.memcpyHtoDAsync(p, host.data(), kBytes, 3),
              CuResult::Success);
    ASSERT_EQ(ctx.memFreeAsync(p), CuResult::Success);

    // The allocation must survive until stream 3 drains: freeing at
    // dispatch time would recycle the block mid-transfer (virtual-time
    // use-after-free).
    EXPECT_EQ(ctx.pendingFrees(), 1u);
    EXPECT_EQ(device.memUsed(), used);

    ASSERT_EQ(ctx.streamSynchronize(3), CuResult::Success);
    EXPECT_EQ(ctx.pendingFrees(), 0u);
    EXPECT_EQ(device.memUsed(), used - kBytes);
}

TEST(DeferredFreeTest, InteriorPointerOwnershipOrdersTheFree)
{
    gpu::Device device(gpu::DeviceSpec::a100());
    Clock clock;
    gpu::GpuContext ctx(device, clock);

    constexpr std::size_t kBytes = 64 << 10;
    gpu::DevicePtr p = 0;
    ASSERT_EQ(ctx.memAlloc(&p, kBytes), CuResult::Success);
    std::size_t used = device.memUsed();

    // The in-flight copy targets an interior offset; ownership is
    // tracked by allocation base, so the free still defers.
    std::vector<std::uint8_t> host(1024, 0x12);
    ASSERT_EQ(ctx.memcpyHtoDAsync(p + 4096, host.data(), host.size(), 2),
              CuResult::Success);
    ASSERT_EQ(ctx.memFreeAsync(p), CuResult::Success);
    EXPECT_EQ(ctx.pendingFrees(), 1u);
    EXPECT_EQ(device.memUsed(), used);

    ASSERT_EQ(ctx.ctxSynchronize(), CuResult::Success);
    EXPECT_EQ(ctx.pendingFrees(), 0u);
    EXPECT_EQ(device.memUsed(), used - kBytes);
}

TEST(DeferredFreeTest, DoubleAsyncFreeIsReportedWhileFirstIsPending)
{
    gpu::Device device(gpu::DeviceSpec::a100());
    Clock clock;
    gpu::GpuContext ctx(device, clock);

    constexpr std::size_t kBytes = 1 << 20;
    gpu::DevicePtr p = 0;
    ASSERT_EQ(ctx.memAlloc(&p, kBytes), CuResult::Success);
    std::size_t used = device.memUsed();

    std::vector<std::uint8_t> host(kBytes, 0x55);
    ASSERT_EQ(ctx.memcpyHtoDAsync(p, host.data(), kBytes, 3),
              CuResult::Success);
    ASSERT_EQ(ctx.memFreeAsync(p), CuResult::Success);
    ASSERT_EQ(ctx.pendingFrees(), 1u);

    // The second free of the same pointer must fail like the eventual
    // device free would, not queue a duplicate that runDueFrees later
    // discards silently.
    EXPECT_EQ(ctx.memFreeAsync(p), CuResult::InvalidValue);
    EXPECT_EQ(ctx.pendingFrees(), 1u);

    ASSERT_EQ(ctx.streamSynchronize(3), CuResult::Success);
    EXPECT_EQ(ctx.pendingFrees(), 0u);
    EXPECT_EQ(device.memUsed(), used - kBytes);
}

TEST(LaunchArgTest, ScalarArgsBelowVaBaseNeverPinAllocations)
{
    gpu::Device device(gpu::DeviceSpec::a100());
    Clock clock;
    gpu::GpuContext ctx(device, clock);

    gpu::DevicePtr a = 0, b = 0, c = 0;
    constexpr std::size_t kN = 1024;
    ASSERT_EQ(ctx.memAlloc(&a, kN * 4), CuResult::Success);
    ASSERT_EQ(ctx.memAlloc(&b, kN * 4), CuResult::Success);
    ASSERT_EQ(ctx.memAlloc(&c, kN * 4), CuResult::Success);
    EXPECT_GE(a, gpu::Device::kVaBase);

    // Pin c to stream 9 with a launch whose scalar arg (kN) sits far
    // below the VA base: only the genuine device pointers may touch
    // ownership, so a later free of c defers behind stream 9 while the
    // scalar pins nothing.
    gpu::LaunchConfig cfg;
    cfg.kernel = "vec_add";
    cfg.grid_x = 4;
    cfg.block_x = 256;
    cfg.arg(a).arg(b).arg(c).arg(kN, nullptr);
    ASSERT_EQ(ctx.launchKernel(cfg, 9), CuResult::Success);

    ASSERT_EQ(ctx.memFreeAsync(c), CuResult::Success);
    EXPECT_EQ(ctx.pendingFrees(), 1u);
    ASSERT_EQ(ctx.streamSynchronize(9), CuResult::Success);
    EXPECT_EQ(ctx.pendingFrees(), 0u);
}

TEST(DeferredFreeTest, UnknownPointerFailsImmediately)
{
    gpu::Device device(gpu::DeviceSpec::a100());
    Clock clock;
    gpu::GpuContext ctx(device, clock);
    EXPECT_EQ(ctx.memFreeAsync(0xdead000), CuResult::InvalidValue);
    EXPECT_EQ(ctx.pendingFrees(), 0u);
}

TEST(DeferredFreeTest, PipelinedDeferredFreeSurvivesInFlightCopy)
{
    core::Lake lake;
    remote::PipelineConfig p;
    p.enabled = true;
    p.max_batch = 64;
    p.defer_frees = true;
    lake.lib().setPipeline(p);

    std::size_t used0 = lake.device().memUsed();
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, kExtent), CuResult::Success);
    shm::ShmOffset off = lake.arena().alloc(kExtent);
    ASSERT_NE(off, shm::kNullOffset);
    std::memset(lake.arena().at(off), 0x42, kExtent);

    // Copy in flight on stream 2, then a deferred free riding the same
    // batch; the daemon must execute the free after the copy completes
    // on the stream timeline, and the next sync reports no error.
    ASSERT_EQ(lake.lib().cuMemcpyHtoDShmAsync(dev, off, kExtent, 2),
              CuResult::Success);
    ASSERT_EQ(lake.lib().cuMemFree(dev), CuResult::Success);
    EXPECT_EQ(lake.lib().cuStreamSynchronize(2), CuResult::Success);
    EXPECT_EQ(lake.daemon().gpuContext().pendingFrees(), 0u);
    EXPECT_EQ(lake.device().memUsed(), used0);
    lake.arena().free(off);
}

// ---------------------------------------------------------------------
// Satellite 1: carve-out cycles never fragment the arena
// ---------------------------------------------------------------------

TEST(ArenaHighwaterTest, PoolCarveCyclesHoldHighwaterFlat)
{
    core::Lake lake;
    std::size_t hw = 0;
    for (int cycle = 0; cycle < 8; ++cycle) {
        // A scratch allocation alongside the pool, as real callers do.
        shm::ShmOffset scratch = lake.arena().alloc(4096);
        ASSERT_NE(scratch, shm::kNullOffset);
        {
            StreamOrchestrator orch(lake.lib(), lake.clock(),
                                    testConfig(2, 4, 8192, 2));
            StreamOrchestrator::Buffer *b = orch.acquire(8192);
            ASSERT_NE(b, nullptr);
            orch.release(b);
        }
        lake.arena().free(scratch);
        if (cycle == 0)
            hw = lake.arena().highwater();
        // Coalescing must hand the next cycle the same offsets: any
        // growth means the carve-out crept upward through a
        // fragmented free list.
        EXPECT_EQ(lake.arena().highwater(), hw) << "cycle " << cycle;
    }
    EXPECT_GT(hw, 0u);
}

// ---------------------------------------------------------------------
// Config plumbing
// ---------------------------------------------------------------------

TEST(StreamingConfigTest, ApplyEnvDrivesTheMasterSwitch)
{
    StreamingConfig sc;
    ASSERT_FALSE(sc.enabled);

    ::setenv("LAKE_STREAMS", "8", 1);
    ::setenv("LAKE_POOL_BUFFERS", "16", 1);
    ::setenv("LAKE_POOL_CLASS_BYTES", "131072", 1);
    sc.applyEnv();
    EXPECT_TRUE(sc.enabled);
    EXPECT_EQ(sc.streams, 8u);
    EXPECT_EQ(sc.pool_buffers, 16u);
    EXPECT_EQ(sc.class_bytes, 131072u);

    ::setenv("LAKE_STREAMS", "0", 1);
    sc.applyEnv();
    EXPECT_FALSE(sc.enabled);

    ::unsetenv("LAKE_STREAMS");
    ::unsetenv("LAKE_POOL_BUFFERS");
    ::unsetenv("LAKE_POOL_CLASS_BYTES");
    StreamingConfig untouched;
    untouched.applyEnv();
    EXPECT_FALSE(untouched.enabled);
}

TEST(StreamingConfigTest, MalformedStreamsValueIsIgnored)
{
    // An unparsable LAKE_STREAMS must not flip the master switch via
    // the numeric fallback — a typo would silently enable streaming.
    ::setenv("LAKE_STREAMS", "abc", 1);
    StreamingConfig sc;
    sc.applyEnv();
    EXPECT_FALSE(sc.enabled);
    EXPECT_EQ(sc.streams, 4u);

    // ...and must not disable (or re-size) an explicitly enabled one.
    StreamingConfig on;
    on.enabled = true;
    on.streams = 2;
    on.applyEnv();
    EXPECT_TRUE(on.enabled);
    EXPECT_EQ(on.streams, 2u);
    ::unsetenv("LAKE_STREAMS");
}

TEST(StreamingConfigTest, LakeConstructsOrchestratorOnlyWhenEnabled)
{
    core::Lake plain;
    EXPECT_EQ(plain.streaming(), nullptr);

    core::LakeConfig cfg;
    cfg.streaming.enabled = true;
    cfg.streaming.streams = 2;
    cfg.streaming.pool_buffers = 2;
    cfg.streaming.class_bytes = 4096;
    cfg.streaming.size_classes = 1;
    core::Lake lake(cfg);
    ASSERT_NE(lake.streaming(), nullptr);
    EXPECT_EQ(lake.streaming()->streams(), 2u);
    EXPECT_EQ(lake.streaming()->totalBuffers(), 2u);
}

// ---- streaming consumers: result parity with the serial paths --------

TEST(StreamedConsumersTest, StreamedClassifyMatchesSerialClassify)
{
    ml::registerMlKernels();
    core::LakeConfig cfg;
    cfg.streaming.enabled = true;
    core::Lake lake(cfg);
    ASSERT_NE(lake.streaming(), nullptr);

    Rng rng(7);
    ml::Mlp net(ml::MlpConfig::linnos(), rng);
    // Odd batch size: the last per-stream chunk is ragged.
    ml::Matrix x(37, 31);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(rng.uniform(0.0, 1.0));

    ml::LakeMlp serial(net, lake.lib(), /*sync_copy=*/false, 64);
    std::vector<int> want = serial.classify(x);
    EXPECT_EQ(want, net.classify(x));

    ml::LakeMlp streamed(net, lake.lib(), /*sync_copy=*/false, 64);
    streamed.enableStreaming(lake.streaming());
    Result<std::vector<int>> got = streamed.tryClassify(x);
    ASSERT_TRUE(got.isOk()) << got.status().message();
    EXPECT_EQ(got.value(), want);
}

TEST(StreamedConsumersTest, StreamedCipherBatchRoundTripsAndAuths)
{
    core::LakeConfig cfg;
    cfg.streaming.enabled = true;
    core::Lake lake(cfg);
    ASSERT_NE(lake.streaming(), nullptr);

    std::uint8_t key[32];
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(i * 7 + 3);

    constexpr std::size_t kN = 9;
    constexpr std::size_t kLen = 4096;

    crypto::LakeGpuCipher serial(key, 32, lake.lib(), kLen);
    crypto::LakeGpuCipher streamed(key, 32, lake.lib(), kLen);
    EXPECT_FALSE(streamed.batched());
    streamed.enableStreaming(lake.streaming());
    EXPECT_TRUE(streamed.batched());

    std::vector<std::uint8_t> plain(kN * kLen);
    for (std::size_t i = 0; i < plain.size(); ++i)
        plain[i] = static_cast<std::uint8_t>(i * 13 + 5);
    std::vector<std::uint8_t> ivs(kN * crypto::kGcmIvBytes);
    for (std::size_t i = 0; i < ivs.size(); ++i)
        ivs[i] = static_cast<std::uint8_t>(i);

    std::vector<std::uint8_t> cipher(kN * kLen);
    std::vector<crypto::ExtentOp> enc(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        enc[i].iv = &ivs[i * crypto::kGcmIvBytes];
        enc[i].in = &plain[i * kLen];
        enc[i].len = kLen;
        enc[i].out = &cipher[i * kLen];
    }
    streamed.encryptBatch(enc.data(), kN);

    // Bit-exact with the per-extent serial engine, tag included.
    for (std::size_t i = 0; i < kN; ++i) {
        std::vector<std::uint8_t> ref(kLen);
        std::uint8_t ref_tag[crypto::kGcmTagBytes];
        serial.encryptExtent(enc[i].iv, enc[i].in, kLen, ref.data(),
                             ref_tag);
        EXPECT_EQ(std::memcmp(enc[i].out, ref.data(), kLen), 0)
            << "extent " << i;
        EXPECT_EQ(std::memcmp(enc[i].tag, ref_tag,
                              crypto::kGcmTagBytes),
                  0)
            << "extent " << i;
    }

    std::vector<std::uint8_t> back(kN * kLen);
    std::vector<crypto::ExtentOp> dec(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        dec[i].iv = &ivs[i * crypto::kGcmIvBytes];
        dec[i].in = &cipher[i * kLen];
        dec[i].len = kLen;
        dec[i].out = &back[i * kLen];
        std::memcpy(dec[i].tag, enc[i].tag, crypto::kGcmTagBytes);
    }
    ASSERT_TRUE(streamed.decryptBatch(dec.data(), kN));
    EXPECT_EQ(back, plain);
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_TRUE(dec[i].ok);

    // A tampered tag fails exactly that extent's authentication.
    dec[3].tag[0] ^= 0xff;
    EXPECT_FALSE(streamed.decryptBatch(dec.data(), kN));
    EXPECT_FALSE(dec[3].ok);
    EXPECT_TRUE(dec[2].ok);
    EXPECT_TRUE(dec[4].ok);
}

// Regression: streams > requested pool_buffers. Before the constructor
// clamp, the 5th in-flight item's acquire() hit a credit stall whose
// forced sync retired — and immediately re-issued — the oldest staged
// buffer, overwriting results the caller had not read yet (silently
// corrupted ciphertext/tags/labels, no error).
TEST(StreamedConsumersTest, MoreStreamsThanRequestedCreditsStaysExact)
{
    ml::registerMlKernels();
    core::LakeConfig cfg;
    cfg.streaming.enabled = true;
    cfg.streaming.streams = 8;
    cfg.streaming.pool_buffers = 4;
    core::Lake lake(cfg);
    ASSERT_NE(lake.streaming(), nullptr);
    ASSERT_GE(lake.streaming()->config().pool_buffers, 8u);

    // Cipher: enough extents to wrap the 8 streams twice.
    std::uint8_t key[32];
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(i * 11 + 1);
    constexpr std::size_t kN = 19;
    constexpr std::size_t kLen = 4096;

    crypto::LakeGpuCipher serial(key, 32, lake.lib(), kLen);
    crypto::LakeGpuCipher streamed(key, 32, lake.lib(), kLen);
    streamed.enableStreaming(lake.streaming());

    std::vector<std::uint8_t> plain(kN * kLen);
    for (std::size_t i = 0; i < plain.size(); ++i)
        plain[i] = static_cast<std::uint8_t>(i * 131 + 17);
    std::vector<std::uint8_t> ivs(kN * crypto::kGcmIvBytes);
    for (std::size_t i = 0; i < ivs.size(); ++i)
        ivs[i] = static_cast<std::uint8_t>(i * 3);

    std::vector<std::uint8_t> cipher(kN * kLen);
    std::vector<crypto::ExtentOp> enc(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        enc[i].iv = &ivs[i * crypto::kGcmIvBytes];
        enc[i].in = &plain[i * kLen];
        enc[i].len = kLen;
        enc[i].out = &cipher[i * kLen];
    }
    streamed.encryptBatch(enc.data(), kN);

    for (std::size_t i = 0; i < kN; ++i) {
        std::vector<std::uint8_t> ref(kLen);
        std::uint8_t ref_tag[crypto::kGcmTagBytes];
        serial.encryptExtent(enc[i].iv, enc[i].in, kLen, ref.data(),
                             ref_tag);
        EXPECT_EQ(std::memcmp(enc[i].out, ref.data(), kLen), 0)
            << "extent " << i;
        EXPECT_EQ(std::memcmp(enc[i].tag, ref_tag,
                              crypto::kGcmTagBytes),
                  0)
            << "extent " << i;
    }

    // MLP: a batch wide enough that all 8 chunks stage concurrently.
    Rng rng(23);
    ml::Mlp net(ml::MlpConfig::linnos(), rng);
    ml::Matrix x(37, 31);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(rng.uniform(0.0, 1.0));

    ml::LakeMlp mlp(net, lake.lib(), /*sync_copy=*/false, 64);
    mlp.enableStreaming(lake.streaming());
    Result<std::vector<int>> got = mlp.tryClassify(x);
    ASSERT_TRUE(got.isOk()) << got.status().message();
    EXPECT_EQ(got.value(), net.classify(x));
}

} // namespace
} // namespace lake
