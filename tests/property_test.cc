// Cross-cutting property tests: determinism of the whole simulator,
// wire-format round-trip under random operation sequences, channel
// byte conservation, verifier soundness on randomly generated
// programs, and GCM round-trips with random AAD.

#include <gtest/gtest.h>

#include <vector>

#include "channel/channel.h"
#include "crypto/gcm.h"
#include "policy/bpf.h"
#include "remote/wire.h"
#include "storage/e2e.h"
#include "storage/linnos.h"

namespace lake {
namespace {

TEST(DeterminismTest, E2eRunsAreReproducible)
{
    // The whole stack — traces, devices, batching, inference, policy —
    // must be a pure function of the seed: replays are the basis of
    // every number in EXPERIMENTS.md.
    Rng rng(71);
    storage::LinnosDataset data = storage::collectLinnosData(
        storage::TraceSpec::azure().rerated(3.0),
        storage::NvmeSpec::samsung980Pro(), 300_ms, 0.85, 7);
    ml::Mlp net = storage::trainLinnosModel(data, 0, 3, 0.05f, rng);

    storage::E2eConfig cfg;
    cfg.mode = storage::E2eMode::LakeNn;
    cfg.model = &net;
    cfg.duration = 200_ms;
    std::vector<storage::TraceSpec> traces = {
        storage::TraceSpec::azure().rerated(2.0),
        storage::TraceSpec::bingI(), storage::TraceSpec::cosmos()};

    storage::E2eResult a = storage::runE2e(traces, cfg);
    storage::E2eResult b = storage::runE2e(traces, cfg);
    EXPECT_DOUBLE_EQ(a.avg_read_lat_us, b.avg_read_lat_us);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.rerouted, b.rerouted);
    EXPECT_EQ(a.inference_batches, b.inference_batches);
    EXPECT_EQ(a.gpu_batches, b.gpu_batches);
}

TEST(DeterminismTest, TrainingIsReproducible)
{
    Rng r1(5), r2(5);
    storage::LinnosDataset data = storage::collectLinnosData(
        storage::TraceSpec::bingI(), storage::NvmeSpec::samsung980Pro(),
        200_ms, 0.85, 3);
    ml::Mlp a = storage::trainLinnosModel(data, 0, 2, 0.05f, r1);
    ml::Mlp b = storage::trainLinnosModel(data, 0, 2, 0.05f, r2);
    EXPECT_EQ(a.serialize(), b.serialize());
}

class WireFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(WireFuzzTest, RandomOperationSequencesRoundTrip)
{
    Rng rng(GetParam());
    // Script: 0=u32, 1=u64, 2=f32, 3=bytes, 4=str.
    std::vector<int> script;
    std::vector<std::uint64_t> ints;
    std::vector<float> floats;
    std::vector<std::vector<std::uint8_t>> blobs;
    std::vector<std::string> strs;

    remote::Encoder enc;
    for (int op = 0; op < 64; ++op) {
        int kind = static_cast<int>(rng.uniformInt(0, 4));
        script.push_back(kind);
        switch (kind) {
          case 0: {
            auto v = static_cast<std::uint32_t>(rng.uniformInt(0, ~0u));
            ints.push_back(v);
            enc.u32(v);
            break;
          }
          case 1: {
            std::uint64_t v = rng.uniformInt(0, ~0ull >> 1);
            ints.push_back(v);
            enc.u64(v);
            break;
          }
          case 2: {
            auto v = static_cast<float>(rng.uniform(-1e6, 1e6));
            floats.push_back(v);
            enc.f32(v);
            break;
          }
          case 3: {
            std::vector<std::uint8_t> b(rng.uniformInt(0, 300));
            for (auto &x : b)
                x = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
            enc.bytes(b.data(), b.size());
            blobs.push_back(std::move(b));
            break;
          }
          case 4: {
            std::string s(rng.uniformInt(0, 40), 'x');
            for (auto &c : s)
                c = static_cast<char>(rng.uniformInt(32, 126));
            enc.str(s);
            strs.push_back(std::move(s));
            break;
          }
        }
    }

    std::vector<std::uint8_t> buf = enc.take();
    remote::Decoder dec(buf);
    std::size_t ii = 0, fi = 0, bi = 0, si = 0;
    for (int kind : script) {
        switch (kind) {
          case 0:
            ASSERT_EQ(dec.u32(), static_cast<std::uint32_t>(ints[ii++]));
            break;
          case 1:
            ASSERT_EQ(dec.u64(), ints[ii++]);
            break;
          case 2:
            ASSERT_FLOAT_EQ(dec.f32(), floats[fi++]);
            break;
          case 3: {
            std::size_t n = 0;
            const std::uint8_t *p = dec.bytes(&n);
            ASSERT_EQ(n, blobs[bi].size());
            if (n > 0) {
                ASSERT_EQ(std::vector<std::uint8_t>(p, p + n),
                          blobs[bi]);
            }
            ++bi;
            break;
          }
          case 4:
            ASSERT_EQ(dec.str(), strs[si++]);
            break;
        }
    }
    EXPECT_TRUE(dec.ok());
    EXPECT_TRUE(dec.atEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ChannelPropertyTest, BytesAreConserved)
{
    Clock clock;
    channel::Channel chan(channel::Kind::Netlink, clock);
    Rng rng(9);
    using Dir = channel::Channel::Dir;

    std::uint64_t sent = 0, received = 0;
    for (int i = 0; i < 200; ++i) {
        std::vector<std::uint8_t> msg(rng.uniformInt(0, 8192));
        sent += msg.size();
        chan.send(Dir::KernelToUser, std::move(msg));
        if (rng.chance(0.7) && chan.pending(Dir::KernelToUser))
            received += chan.recv(Dir::KernelToUser).size();
    }
    while (chan.pending(Dir::KernelToUser))
        received += chan.recv(Dir::KernelToUser).size();
    EXPECT_EQ(sent, received);
    EXPECT_EQ(chan.bytesSent(), sent);
}

TEST(BpfPropertyTest, VerifiedRandomProgramsTerminate)
{
    // Generate random *forward-jumping* programs; every one the
    // verifier accepts must run to completion within its fuel (the
    // verifier's termination argument, exercised broadly).
    policy::BpfVm vm;
    vm.registerHelper(1, [](const auto &a) { return a[0] + a[1]; });
    Rng rng(11);
    int accepted = 0;

    for (int trial = 0; trial < 300; ++trial) {
        std::size_t len = rng.uniformInt(1, 40);
        std::vector<policy::BpfInsn> prog;
        for (std::size_t pc = 0; pc < len; ++pc) {
            policy::BpfInsn insn{};
            insn.op = static_cast<policy::BpfOp>(rng.uniformInt(
                0, static_cast<std::uint64_t>(policy::BpfOp::Exit)));
            insn.dst = static_cast<std::uint8_t>(rng.uniformInt(0, 12));
            insn.src = static_cast<std::uint8_t>(rng.uniformInt(0, 12));
            insn.off = static_cast<std::int32_t>(rng.uniformInt(0, 8)) -
                       2; // sometimes invalid (backward / past end)
            insn.imm = static_cast<std::int64_t>(
                           rng.uniformInt(0, 128)) -
                       16;
            prog.push_back(insn);
        }
        prog.push_back({policy::BpfOp::Exit, 0, 0, 0, 0});

        if (vm.verify(prog, 4).isOk()) {
            ++accepted;
            std::vector<std::uint64_t> ctx = {1, 2, 3, 4};
            (void)vm.run(prog, ctx); // must not panic or hang
        }
    }
    // The generator produces some valid programs, so this exercises
    // the interpreter too, not just rejection paths.
    EXPECT_GT(accepted, 5);
}

class GcmAadTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GcmAadTest, RoundTripWithRandomAad)
{
    Rng rng(GetParam());
    std::uint8_t key[16];
    for (auto &k : key)
        k = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    std::uint8_t iv[12];
    for (auto &v : iv)
        v = static_cast<std::uint8_t>(rng.uniformInt(0, 255));

    crypto::AesGcm gcm(key, sizeof(key));
    std::vector<std::uint8_t> plain(rng.uniformInt(1, 2000));
    std::vector<std::uint8_t> aad(rng.uniformInt(0, 100));
    for (auto &b : plain)
        b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    for (auto &b : aad)
        b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));

    std::vector<std::uint8_t> cipher(plain.size()), out(plain.size());
    std::uint8_t tag[16];
    gcm.encrypt(iv, plain.data(), plain.size(), aad.data(), aad.size(),
                cipher.data(), tag);
    ASSERT_TRUE(gcm.decrypt(iv, cipher.data(), cipher.size(), aad.data(),
                            aad.size(), tag, out.data()));
    EXPECT_EQ(out, plain);

    // Tampering with the AAD must break authentication.
    if (!aad.empty()) {
        aad[0] ^= 1;
        EXPECT_FALSE(gcm.decrypt(iv, cipher.data(), cipher.size(),
                                 aad.data(), aad.size(), tag,
                                 out.data()));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcmAadTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

} // namespace
} // namespace lake
