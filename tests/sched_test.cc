// Tests for the MLLB load-balancing substrate (§7.3).

#include <gtest/gtest.h>

#include "sched/mllb.h"

namespace lake::sched {
namespace {

TEST(MiniSchedulerTest, LoadsAreConsistent)
{
    Rng rng(61);
    MiniScheduler sched(16, 4.0, rng);
    EXPECT_EQ(sched.cores(), 16u);
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < sched.cores(); ++c)
        total += sched.coreLoad(c);
    EXPECT_GT(total, 0u);
}

TEST(MiniSchedulerTest, CandidateShape)
{
    Rng rng(67);
    MiniScheduler sched(8, 6.0, rng);
    auto cand = sched.sampleCandidate(rng);
    ASSERT_EQ(cand.x.size(), kMllbFeatures);
    EXPECT_TRUE(cand.migrate == 0 || cand.migrate == 1);
    // Source load (x[0]) should not be below destination load (x[1]).
    EXPECT_GE(cand.x[0], cand.x[1]);
}

TEST(MllbDatasetTest, ContainsBothClasses)
{
    Rng rng(71);
    auto data = buildMllbDataset(3000, 16, 5.0, rng);
    ASSERT_EQ(data.size(), 3000u);
    std::size_t migrate = 0;
    for (const auto &c : data)
        migrate += c.migrate;
    // A usable training set needs both outcomes well represented.
    EXPECT_GT(migrate, data.size() / 20);
    EXPECT_LT(migrate, data.size() * 19 / 20);
}

TEST(MllbTrainingTest, ModelLearnsTheHeuristicBoundary)
{
    Rng rng(73);
    auto train = buildMllbDataset(6000, 16, 5.0, rng);
    ml::Mlp net = trainMllbModel(train, 30, 0.05f, rng);

    auto test = buildMllbDataset(1500, 16, 5.0, rng);
    ml::Matrix x(test.size(), kMllbFeatures);
    std::vector<int> y(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
        std::copy(test[i].x.begin(), test[i].x.end(), x.row(i));
        y[i] = test[i].migrate;
    }
    EXPECT_GT(net.accuracy(x, y), 0.85);
}

TEST(MllbModelTest, ShapeMatchesConfig)
{
    Rng rng(79);
    ml::Mlp net(ml::MlpConfig::mllb(), rng);
    EXPECT_EQ(net.config().input, kMllbFeatures);
    EXPECT_EQ(net.config().output, 2u);
}

} // namespace
} // namespace lake::sched
