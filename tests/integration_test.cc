// Cross-module integration tests: the full LAKE stack end to end,
// including a miniature version of the Fig. 13 adaptive contention
// experiment.

#include <gtest/gtest.h>

#include <memory>

#include "base/ring_buffer.h"
#include "core/lake.h"
#include "ml/backends.h"
#include "ml/gpu_kernels.h"
#include "policy/bpf.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace lake {
namespace {

TEST(LakeBootTest, ComponentsAreWired)
{
    core::Lake lake;
    EXPECT_EQ(lake.clock().now(), 0u);
    EXPECT_EQ(lake.arena().capacity(), lake.config().shm_bytes);
    EXPECT_EQ(lake.device().memUsed(), 0u);
    EXPECT_EQ(lake.channel().kind(), channel::Kind::Netlink);
}

TEST(LakeBootTest, AlternateChannelConfigurations)
{
    core::LakeConfig cfg;
    cfg.channel = channel::Kind::Mmap;
    cfg.shm_bytes = 1 << 20;
    cfg.device = gpu::DeviceSpec::modest();
    core::Lake lake(cfg);
    EXPECT_EQ(lake.channel().kind(), channel::Kind::Mmap);
    EXPECT_EQ(lake.device().spec().effective_gflops,
              gpu::DeviceSpec::modest().effective_gflops);
}

TEST(QuickstartFlowTest, SaxpyThroughTheFullStack)
{
    // The README quickstart, as a test: a "kernel module" drives
    // saxpy on the GPU through lakeShm + lakeLib + lakeD.
    core::Lake lake;
    auto &lib = lake.lib();
    auto &arena = lake.arena();

    const std::uint64_t n = 4096;
    shm::ShmOffset h = arena.alloc(n * sizeof(float));
    ASSERT_NE(h, shm::kNullOffset);
    auto *buf = static_cast<float *>(arena.at(h));

    gpu::DevicePtr x = 0, y = 0;
    ASSERT_EQ(lib.cuMemAlloc(&x, n * 4), gpu::CuResult::Success);
    ASSERT_EQ(lib.cuMemAlloc(&y, n * 4), gpu::CuResult::Success);

    for (std::uint64_t i = 0; i < n; ++i)
        buf[i] = 1.0f;
    ASSERT_EQ(lib.cuMemcpyHtoDShm(x, h, n * 4), gpu::CuResult::Success);
    for (std::uint64_t i = 0; i < n; ++i)
        buf[i] = 2.0f;
    ASSERT_EQ(lib.cuMemcpyHtoDShm(y, h, n * 4), gpu::CuResult::Success);

    gpu::LaunchConfig cfg;
    cfg.kernel = "saxpy";
    cfg.argF(2.5f).arg(x).arg(y).arg(n, nullptr);
    ASSERT_EQ(lib.cuLaunchKernel(cfg), gpu::CuResult::Success);
    ASSERT_EQ(lib.cuCtxSynchronize(), gpu::CuResult::Success);

    ASSERT_EQ(lib.cuMemcpyDtoHShm(h, y, n * 4), gpu::CuResult::Success);
    for (std::uint64_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(buf[i], 4.5f);

    lib.cuMemFree(x);
    lib.cuMemFree(y);
    arena.free(h);
    EXPECT_GT(lake.clock().now(), 0u);
}

TEST(RegistryInferenceFlowTest, Listing4EndToEnd)
{
    // Listing 4/5 of the paper, against real classifiers: capture,
    // commit, batch-score through the policy, truncate.
    core::Lake lake;
    Rng rng(139);
    ml::registerMlKernels();

    ml::Mlp model(ml::MlpConfig::linnos(), rng);
    auto cpu_backend =
        std::make_shared<ml::CpuMlp>(model, lake.kernelCpu());
    auto gpu_backend = std::make_shared<ml::LakeMlp>(
        model, lake.lib(), false, 64);

    registry::Schema schema;
    schema.add("pend_ios");
    schema.add("lat", 8, 4);
    ASSERT_TRUE(lake.registries()
                    .createRegistry("sda1", "bio", schema, 64)
                    .isOk());
    registry::Registry *reg = lake.registries().find("sda1", "bio");
    ASSERT_NE(reg, nullptr);

    auto featurize = [](const std::vector<registry::FeatureVector> &fvs) {
        ml::Matrix x(fvs.size(), 31);
        for (std::size_t r = 0; r < fvs.size(); ++r) {
            x.at(r, 0) =
                static_cast<float>(fvs[r].get("pend_ios")) * 0.1f;
            const auto &lat =
                fvs[r].values.count(registry::featureKey("lat"))
                    ? fvs[r].values.at(registry::featureKey("lat"))
                    : std::vector<std::uint64_t>(4, 0);
            for (std::size_t h = 0; h < lat.size() && h < 4; ++h)
                x.at(r, 1 + h) = static_cast<float>(lat[h]) * 1e-3f;
        }
        return x;
    };
    reg->registerClassifier(
        registry::Arch::Cpu,
        [&](const std::vector<registry::FeatureVector> &fvs) {
            auto cls = cpu_backend->classify(featurize(fvs));
            return std::vector<float>(cls.begin(), cls.end());
        });
    reg->registerClassifier(
        registry::Arch::Gpu,
        [&](const std::vector<registry::FeatureVector> &fvs) {
            auto cls = gpu_backend->classify(featurize(fvs));
            return std::vector<float>(cls.begin(), cls.end());
        });
    reg->registerPolicy(
        std::make_unique<policy::BatchThresholdPolicy>(8));

    // Small batch -> CPU.
    reg->beginFvCapture(0);
    for (int i = 0; i < 4; ++i) {
        reg->captureFeatureIncr("pend_ios", 1);
        reg->captureFeature("lat", 100 + i);
        reg->commitFvCapture(i + 1);
    }
    auto fvs = reg->getFeatures();
    auto scores = reg->scoreFeatures(fvs, lake.clock().now());
    EXPECT_EQ(scores.size(), 4u);
    EXPECT_EQ(reg->lastEngine(), policy::Engine::Cpu);

    // Large batch -> GPU, identical labels to the CPU backend.
    for (int i = 0; i < 16; ++i) {
        reg->captureFeatureIncr("pend_ios", 1);
        reg->captureFeature("lat", 500 + i);
        reg->commitFvCapture(100 + i);
    }
    reg->truncateFeatures(Nanos{50});
    fvs = reg->getFeatures();
    ASSERT_GE(fvs.size(), 16u);
    scores = reg->scoreFeatures(fvs, lake.clock().now());
    EXPECT_EQ(reg->lastEngine(), policy::Engine::Gpu);

    auto cpu_scores_check = cpu_backend->classify(featurize(fvs));
    for (std::size_t i = 0; i < scores.size(); ++i)
        EXPECT_FLOAT_EQ(scores[i],
                        static_cast<float>(cpu_scores_check[i]));
}

TEST(ModelLifecycleFlowTest, Table1ModelPathServesInference)
{
    // Table 1's model lifecycle against a real network: train (user
    // space), update_model commits the blob, load_model brings it into
    // memory at "boot", and inference runs from the in-memory image.
    core::Lake lake;
    Rng rng(211);

    ml::Mlp trained(ml::MlpConfig::linnos(), rng);
    const std::string path = "/lake/models/lat.nn";
    auto &mgr = lake.registries();

    ASSERT_TRUE(registry::create_model(mgr, "sda1", "bio", path).isOk());
    ASSERT_TRUE(registry::update_model(mgr, "sda1", "bio", path,
                                       trained.serialize())
                    .isOk());
    ASSERT_TRUE(registry::load_model(mgr, "sda1", "bio", path).isOk());

    const std::vector<std::uint8_t> *blob = mgr.models().inMemory(path);
    ASSERT_NE(blob, nullptr);
    auto loaded = ml::Mlp::deserialize(*blob);
    ASSERT_TRUE(loaded.isOk());

    ml::Matrix x(8, 31);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(i % 10) * 0.09f;
    EXPECT_EQ(loaded.value().classify(x), trained.classify(x));

    // Loading is a durable (costed) operation; inference-time access
    // to the in-memory image charges nothing (§5.1).
    Nanos before = lake.clock().now();
    mgr.models().inMemory(path);
    EXPECT_EQ(lake.clock().now(), before);
}

TEST(PanicContractDeathTest, InvariantViolationsAbort)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Protocol and container misuse is a bug, not a runtime condition:
    // LAKE panics instead of corrupting simulation state.
    EXPECT_DEATH(
        {
            RingBuffer<int> r(2);
            r.pop(); // empty
        },
        "pop from empty ring");
    EXPECT_DEATH(
        {
            Clock clock;
            channel::Channel chan(channel::Kind::Netlink, clock);
            chan.recv(channel::Channel::Dir::KernelToUser);
        },
        "recv on empty");
    EXPECT_DEATH(
        {
            registry::Registry reg("r", "s",
                                   registry::Schema().add("x"), 4);
            reg.captureFeature("undeclared", 1);
        },
        "undeclared feature");
}

TEST(ContentionFlowTest, AdaptivePolicySwitchesAndReclaims)
{
    // A miniature Fig. 13: a kernel inference loop shares the GPU with
    // a user hashing job. The Fig. 3 policy must (a) use the GPU when
    // idle, (b) fall back to CPU under contention, (c) reclaim after.
    core::Lake lake;
    gpu::Device &dev = lake.device();

    policy::ContentionAwarePolicy::Config pcfg;
    pcfg.probe_interval = 5_ms;
    pcfg.avg_window = 2;
    pcfg.exec_threshold = 40.0;
    pcfg.batch_threshold = 4;
    policy::ContentionAwarePolicy policy(lake.nvmlProbe(), pcfg);

    Clock &clock = lake.clock();
    auto decide = [&](std::size_t batch) {
        policy::PolicyInput in;
        in.batch_size = batch;
        in.now = clock.now();
        return policy.decide(in);
    };

    // Phase 1: idle GPU.
    EXPECT_EQ(decide(16), policy::Engine::Gpu);

    // Phase 2: user job saturates the GPU for a while.
    for (int i = 0; i < 20; ++i) {
        dev.reserveCompute(clock.now(), 5_ms);
        clock.advance(5_ms);
        decide(16);
    }
    EXPECT_EQ(decide(16), policy::Engine::Cpu);

    // Phase 3: user job exits; utilization decays; GPU reclaimed.
    policy::Engine e = policy::Engine::Cpu;
    for (int i = 0; i < 20 && e == policy::Engine::Cpu; ++i) {
        clock.advance(5_ms);
        e = decide(16);
    }
    EXPECT_EQ(e, policy::Engine::Gpu);
}

TEST(ContentionFlowTest, BpfPolicyDrivesTheSameSwitch)
{
    core::Lake lake;
    policy::BpfVm vm;
    policy::BpfPolicy::Config cfg;
    cfg.avg_window = 1;
    policy::BpfPolicy policy(vm, policy::buildFig3Program(40.0, 4),
                             lake.nvmlProbe(), cfg);

    Clock &clock = lake.clock();
    policy::PolicyInput in;
    in.batch_size = 16;
    in.now = clock.now();
    EXPECT_EQ(policy.decide(in), policy::Engine::Gpu);

    lake.device().reserveCompute(clock.now(), 50_ms);
    clock.advance(10_ms);
    in.now = clock.now();
    EXPECT_EQ(policy.decide(in), policy::Engine::Cpu);
}

TEST(UserKernelSharingTest, KernelWorkQueuesBehindUserWork)
{
    // The mechanism behind Fig. 1: without policy control, kernel
    // launches queue behind user-space kernels on the device engine.
    core::Lake lake;
    gpu::Device &dev = lake.device();

    // "User space" grabs the compute engine for 1 ms.
    gpu::EngineSpan user = dev.reserveCompute(0, 1_ms);
    // The kernel's inference launch can only start after it.
    gpu::EngineSpan kernel = dev.reserveCompute(10_us, 50_us);
    EXPECT_EQ(kernel.start, user.end);
    EXPECT_EQ(kernel.end, user.end + 50_us);
}

} // namespace
} // namespace lake
