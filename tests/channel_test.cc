// Tests for the kernel/user communication channels (§6, Table 2, Fig 6).

#include <gtest/gtest.h>

#include <numeric>

#include "channel/channel.h"

namespace lake::channel {
namespace {

using Dir = Channel::Dir;

TEST(ChannelTest, RoundTripPreservesBytes)
{
    Clock clock;
    Channel chan(Kind::Netlink, clock);

    std::vector<std::uint8_t> msg(300);
    std::iota(msg.begin(), msg.end(), 0);
    chan.send(Dir::KernelToUser, msg);
    ASSERT_TRUE(chan.pending(Dir::KernelToUser));
    EXPECT_EQ(chan.recv(Dir::KernelToUser), msg);
    EXPECT_FALSE(chan.pending(Dir::KernelToUser));
}

TEST(ChannelTest, DirectionsAreIndependent)
{
    Clock clock;
    Channel chan(Kind::Netlink, clock);
    chan.send(Dir::KernelToUser, {1});
    chan.send(Dir::UserToKernel, {2});
    EXPECT_EQ(chan.recv(Dir::UserToKernel)[0], 2);
    EXPECT_EQ(chan.recv(Dir::KernelToUser)[0], 1);
}

TEST(ChannelTest, FifoWithinDirection)
{
    Clock clock;
    Channel chan(Kind::Netlink, clock);
    chan.send(Dir::KernelToUser, {10});
    chan.send(Dir::KernelToUser, {20});
    EXPECT_EQ(chan.recv(Dir::KernelToUser)[0], 10);
    EXPECT_EQ(chan.recv(Dir::KernelToUser)[0], 20);
}

TEST(ChannelTest, SendAndRecvChargeVirtualTime)
{
    Clock clock;
    Channel chan(Kind::Netlink, clock);
    chan.send(Dir::KernelToUser, std::vector<std::uint8_t>(64));
    Nanos after_send = clock.now();
    EXPECT_GT(after_send, 0u);
    chan.recv(Dir::KernelToUser);
    // Delivery completes the one-way cost.
    EXPECT_GE(clock.now(), after_send);
    EXPECT_NEAR(static_cast<double>(clock.now()),
                static_cast<double>(chan.transferCost(64)), 1.0);
}

TEST(ChannelTest, StatsCount)
{
    Clock clock;
    Channel chan(Kind::Mmap, clock);
    chan.send(Dir::KernelToUser, std::vector<std::uint8_t>(100));
    chan.send(Dir::UserToKernel, std::vector<std::uint8_t>(50));
    EXPECT_EQ(chan.messagesSent(), 2u);
    EXPECT_EQ(chan.bytesSent(), 150u);
}

TEST(ChannelCostTest, Table2Doorbells)
{
    // The defaults must reproduce Table 2 of the paper.
    EXPECT_EQ(defaultModel(Kind::Signal).doorbell_call, 56_us);
    EXPECT_EQ(defaultModel(Kind::Signal).doorbell_latency, 56_us);
    EXPECT_EQ(defaultModel(Kind::DevRw).doorbell_call, 6_us);
    EXPECT_EQ(defaultModel(Kind::DevRw).doorbell_latency, 57_us);
    EXPECT_EQ(defaultModel(Kind::Netlink).doorbell_call, 11_us);
    EXPECT_EQ(defaultModel(Kind::Netlink).doorbell_latency, 54_us);
    EXPECT_EQ(defaultModel(Kind::Mmap).doorbell_call, 6_us);
    EXPECT_EQ(defaultModel(Kind::Mmap).doorbell_latency, 6_us);
    EXPECT_TRUE(defaultModel(Kind::Mmap).spins);
    EXPECT_FALSE(defaultModel(Kind::Netlink).spins);
}

TEST(ChannelCostTest, Fig6FlatThenLinear)
{
    Clock clock;
    Channel chan(Kind::Netlink, clock);
    // Flat through the 4 KiB threshold...
    Nanos small = chan.roundTripCost(128, 0);
    EXPECT_EQ(chan.roundTripCost(4096, 0), small);
    // ...then strictly increasing.
    Nanos c8k = chan.roundTripCost(8192, 0);
    Nanos c16k = chan.roundTripCost(16384, 0);
    Nanos c32k = chan.roundTripCost(32768, 0);
    EXPECT_GT(c8k, small);
    EXPECT_GT(c16k, c8k);
    EXPECT_GT(c32k, c16k);
    // Past the threshold the marginal cost is linear: the 16K->32K
    // increment doubles the 8K->16K increment.
    EXPECT_NEAR(static_cast<double>(c32k - c16k),
                2.0 * static_cast<double>(c16k - c8k),
                static_cast<double>(c16k - c8k) * 0.05);
    // And the small-message round trip matches Fig. 6's ~28 us.
    EXPECT_NEAR(toUs(small), 28.0, 1.0);
}

TEST(ChannelCostTest, MmapFastestNetlinkChosen)
{
    // §6's conclusion: mmap is fastest but spins; Netlink is the best
    // non-spinning transport.
    Nanos mmap_rt = defaultModel(Kind::Mmap).rt_base;
    Nanos netlink_rt = defaultModel(Kind::Netlink).rt_base;
    Nanos devrw_rt = defaultModel(Kind::DevRw).rt_base;
    Nanos signal_rt = defaultModel(Kind::Signal).rt_base;
    EXPECT_LT(mmap_rt, netlink_rt);
    EXPECT_LT(netlink_rt, devrw_rt);
    EXPECT_LT(devrw_rt, signal_rt);
}

class ChannelKindTest : public ::testing::TestWithParam<Kind>
{
};

TEST_P(ChannelKindTest, PayloadIntegrityAcrossSizes)
{
    Clock clock;
    Channel chan(GetParam(), clock);
    for (std::size_t size : {1u, 128u, 4096u, 32768u}) {
        std::vector<std::uint8_t> msg(size);
        for (std::size_t i = 0; i < size; ++i)
            msg[i] = static_cast<std::uint8_t>(i * 31 + size);
        chan.send(Dir::KernelToUser, msg);
        EXPECT_EQ(chan.recv(Dir::KernelToUser), msg);
    }
}

TEST_P(ChannelKindTest, CostMonotoneInSize)
{
    Clock clock;
    Channel chan(GetParam(), clock);
    Nanos prev = 0;
    for (std::size_t size = 256; size <= 1 << 20; size *= 4) {
        Nanos c = chan.transferCost(size);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ChannelKindTest,
                         ::testing::Values(Kind::Signal, Kind::DevRw,
                                           Kind::Netlink, Kind::Mmap));

TEST(ChannelFaultTest, TryRecvReturnsNulloptWhenEmpty)
{
    Clock clock;
    Channel chan(Kind::Netlink, clock);
    EXPECT_FALSE(chan.tryRecv(Dir::KernelToUser).has_value());

    chan.send(Dir::KernelToUser, {42});
    std::optional<std::vector<std::uint8_t>> msg =
        chan.tryRecv(Dir::KernelToUser);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ((*msg)[0], 42);
    EXPECT_FALSE(chan.tryRecv(Dir::KernelToUser).has_value());
}

TEST(ChannelFaultTest, DropFaultEmptiesTheQueue)
{
    Clock clock;
    Channel chan(Kind::Netlink, clock);
    FaultSpec spec;
    spec.drop = 1.0;
    FaultInjector &inj = chan.installFaults(spec);

    chan.send(Dir::KernelToUser, {1, 2, 3});
    EXPECT_FALSE(chan.pending(Dir::KernelToUser));
    EXPECT_EQ(inj.dropped(), 1u);
    // The sender still paid its share of the transfer cost.
    EXPECT_GT(clock.now(), 0);
    // Accounting counts the send attempt even though it was dropped.
    EXPECT_EQ(chan.messagesSent(), 1u);
}

TEST(ChannelFaultTest, DuplicateFaultDeliversTwice)
{
    Clock clock;
    Channel chan(Kind::Netlink, clock);
    FaultSpec spec;
    spec.duplicate = 1.0;
    chan.installFaults(spec);

    chan.send(Dir::UserToKernel, {9});
    ASSERT_TRUE(chan.pending(Dir::UserToKernel));
    EXPECT_EQ(chan.recv(Dir::UserToKernel)[0], 9);
    ASSERT_TRUE(chan.pending(Dir::UserToKernel));
    EXPECT_EQ(chan.recv(Dir::UserToKernel)[0], 9);
    EXPECT_FALSE(chan.pending(Dir::UserToKernel));
}

TEST(ChannelFaultTest, DelayFaultPostponesDelivery)
{
    Clock clock;
    Channel chan(Kind::Netlink, clock);
    FaultSpec spec;
    spec.delay = 1.0;
    spec.delay_ns = 3_ms;
    chan.installFaults(spec);

    chan.send(Dir::KernelToUser, {1});
    Nanos before = clock.now();
    (void)chan.recv(Dir::KernelToUser); // blocks to the delivery instant
    EXPECT_GE(clock.now() - before, 3_ms);
}

TEST(ChannelFaultTest, CleanChannelHasNoInjector)
{
    Clock clock;
    Channel chan(Kind::Netlink, clock);
    EXPECT_EQ(chan.faults(), nullptr);
}

} // namespace
} // namespace lake::channel
