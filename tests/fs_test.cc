// Tests for the eCryptfs stack (§7.7) and KML prefetching (§7.4).

#include <gtest/gtest.h>

#include <cstring>

#include "core/lake.h"
#include "fs/ecryptfs.h"
#include "fs/prefetch.h"

namespace lake::fs {
namespace {

class ECryptFsTest : public ::testing::Test
{
  protected:
    ECryptFsTest()
    {
        for (int i = 0; i < 32; ++i)
            key_[i] = static_cast<std::uint8_t>(i + 100);
    }

    std::vector<std::uint8_t>
    pattern(std::size_t n)
    {
        std::vector<std::uint8_t> data(n);
        for (std::size_t i = 0; i < n; ++i)
            data[i] = static_cast<std::uint8_t>(i * 31 + 5);
        return data;
    }

    core::Lake lake_;
    std::uint8_t key_[32];
};

TEST_F(ECryptFsTest, WriteReadRoundTripCpu)
{
    crypto::CpuCipher cipher(key_, 32, lake_.clock(),
                             gpu::CpuSpec::xeonGold6226R());
    ECryptFs fs(cipher, lake_.clock(), LowerFsModel::testbed(), 64 << 10);

    auto data = pattern(1 << 20);
    ASSERT_TRUE(fs.writeFile("/a", data.data(), data.size()).isOk());
    EXPECT_TRUE(fs.exists("/a"));
    auto back = fs.readFile("/a");
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), data);
}

TEST_F(ECryptFsTest, WriteReadRoundTripGpu)
{
    crypto::LakeGpuCipher cipher(key_, 32, lake_.lib(), 256 << 10);
    ECryptFs fs(cipher, lake_.clock(), LowerFsModel::testbed(),
                128 << 10);
    auto data = pattern(777777); // deliberately not extent-aligned
    ASSERT_TRUE(fs.writeFile("/g", data.data(), data.size()).isOk());
    auto back = fs.readFile("/g");
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), data);
}

TEST_F(ECryptFsTest, CiphertextIsNotPlaintext)
{
    crypto::CpuCipher cipher(key_, 32, lake_.clock(),
                             gpu::CpuSpec::xeonGold6226R());
    ECryptFs fs(cipher, lake_.clock(), LowerFsModel::testbed(), 16 << 10);
    auto data = pattern(64 << 10);
    fs.writeFile("/s", data.data(), data.size());
    // Stored size includes per-extent IVs and tags.
    EXPECT_GT(fs.storedSize("/s"), data.size());
}

TEST_F(ECryptFsTest, MissingFileIsNotFound)
{
    crypto::CpuCipher cipher(key_, 32, lake_.clock(),
                             gpu::CpuSpec::xeonGold6226R());
    ECryptFs fs(cipher, lake_.clock(), LowerFsModel::testbed(), 16 << 10);
    EXPECT_EQ(fs.readFile("/nope").status().code(), Code::NotFound);
}

TEST_F(ECryptFsTest, EmptyFileRoundTrips)
{
    crypto::CpuCipher cipher(key_, 32, lake_.clock(),
                             gpu::CpuSpec::xeonGold6226R());
    ECryptFs fs(cipher, lake_.clock(), LowerFsModel::testbed(), 16 << 10);
    ASSERT_TRUE(fs.writeFile("/e", nullptr, 0).isOk());
    auto back = fs.readFile("/e");
    ASSERT_TRUE(back.isOk());
    EXPECT_TRUE(back.value().empty());
}

TEST_F(ECryptFsTest, ThroughputOrderingMatchesFig14)
{
    // At 2 MiB blocks: CPU << AES-NI < LAKE (reads).
    gpu::CpuSpec cpu_spec = gpu::CpuSpec::xeonGold6226R();
    auto data = pattern(32 << 20);

    auto read_throughput = [&](crypto::CipherEngine &eng) {
        ECryptFs fs(eng, lake_.clock(), LowerFsModel::testbed(),
                    2 << 20);
        fs.writeFile("/f", data.data(), data.size());
        Nanos t0 = lake_.clock().now();
        auto r = fs.readFile("/f");
        EXPECT_TRUE(r.isOk());
        double secs = toSec(lake_.clock().now() - t0);
        return static_cast<double>(data.size()) / secs / 1e6; // MB/s
    };

    crypto::CpuCipher sw(key_, 32, lake_.clock(), cpu_spec);
    crypto::AesNiCipher ni(key_, 32, lake_.clock(), cpu_spec);
    crypto::LakeGpuCipher gpu_eng(key_, 32, lake_.lib(), 2 << 20);

    double sw_mbps = read_throughput(sw);
    double ni_mbps = read_throughput(ni);
    double gpu_mbps = read_throughput(gpu_eng);

    EXPECT_LT(sw_mbps, 200.0);  // ~142 MB/s in the paper
    EXPECT_GT(ni_mbps, sw_mbps * 3.0);
    EXPECT_GT(gpu_mbps, ni_mbps); // "up to 62% higher than AES-NI"
}

TEST_F(ECryptFsTest, ReadaheadOverlapHelps)
{
    gpu::CpuSpec cpu_spec = gpu::CpuSpec::xeonGold6226R();
    crypto::AesNiCipher eng(key_, 32, lake_.clock(), cpu_spec);
    auto data = pattern(16 << 20);

    ECryptFs with_ra(eng, lake_.clock(), LowerFsModel::testbed(),
                     1 << 20, true);
    with_ra.writeFile("/f", data.data(), data.size());
    Nanos t0 = lake_.clock().now();
    with_ra.readFile("/f");
    Nanos overlap_time = lake_.clock().now() - t0;

    ECryptFs without_ra(eng, lake_.clock(), LowerFsModel::testbed(),
                        1 << 20, false);
    without_ra.writeFile("/f", data.data(), data.size());
    t0 = lake_.clock().now();
    without_ra.readFile("/f");
    Nanos serial_time = lake_.clock().now() - t0;

    EXPECT_LT(overlap_time, serial_time);
}

TEST_F(ECryptFsTest, StatsAccumulate)
{
    crypto::CpuCipher cipher(key_, 32, lake_.clock(),
                             gpu::CpuSpec::xeonGold6226R());
    ECryptFs fs(cipher, lake_.clock(), LowerFsModel::testbed(), 16 << 10);
    auto data = pattern(64 << 10);
    fs.writeFile("/x", data.data(), data.size());
    fs.readFile("/x");
    EXPECT_EQ(fs.stats().extents_written, 4u);
    EXPECT_EQ(fs.stats().extents_read, 4u);
    EXPECT_EQ(fs.stats().bytes_read, data.size());
    EXPECT_GT(fs.stats().crypto_busy, 0u);
    EXPECT_GT(fs.stats().disk_busy, 0u);
}

// ---- prefetch ---------------------------------------------------------

TEST(PrefetchTest, PatternsProduceDistinctFeatures)
{
    Rng rng(41);
    float seq_f[kPrefetchFeatures], rnd_f[kPrefetchFeatures];
    auto seq = generateAccesses(AccessPattern::Sequential, 512, 1 << 20,
                                rng);
    auto rnd =
        generateAccesses(AccessPattern::Random, 512, 1 << 20, rng);
    extractPrefetchFeatures(seq, seq_f);
    extractPrefetchFeatures(rnd, rnd_f);

    // +1-stride ratio separates them decisively.
    EXPECT_GT(seq_f[16], 0.9f);
    EXPECT_LT(rnd_f[16], 0.05f);
}

TEST(PrefetchTest, StridedDetected)
{
    Rng rng(43);
    float f[kPrefetchFeatures];
    auto s = generateAccesses(AccessPattern::Strided, 512, 1 << 20, rng);
    extractPrefetchFeatures(s, f);
    EXPECT_GT(f[17], 0.8f); // repeated-stride ratio
}

TEST(PrefetchTest, ClassifierLearnsPatterns)
{
    Rng rng(47);
    auto train = buildPrefetchDataset(150, 256, rng);
    ml::Mlp net = trainPrefetchModel(train, 30, 0.05f, rng);

    auto test = buildPrefetchDataset(40, 256, rng);
    ml::Matrix x(test.size(), kPrefetchFeatures);
    std::vector<int> y(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
        std::copy(test[i].x.begin(), test[i].x.end(), x.row(i));
        y[i] = test[i].pattern;
    }
    EXPECT_GT(net.accuracy(x, y), 0.9);
}

TEST(PrefetchTest, ReadaheadHelpsSequentialHurtsRandom)
{
    Rng rng(53);
    auto seq = generateAccesses(AccessPattern::Sequential, 4096, 1 << 20,
                                rng);
    auto rnd =
        generateAccesses(AccessPattern::Random, 4096, 1 << 20, rng);

    ReadaheadOutcome seq_ra = simulateReadahead(seq, 64, 4096);
    ReadaheadOutcome seq_nora = simulateReadahead(seq, 0, 4096);
    EXPECT_GT(seq_ra.hit_rate, 0.9);
    EXPECT_LT(seq_nora.hit_rate, 0.1);

    ReadaheadOutcome rnd_ra = simulateReadahead(rnd, 64, 4096);
    EXPECT_GT(rnd_ra.wasted_fraction, 0.8); // prefetches never used
}

TEST(PrefetchTest, PerClassReadaheadBeatsFixedForMixedSet)
{
    // The KML premise: per-pattern readahead beats one-size-fits-all.
    Rng rng(59);
    double adaptive_disk = 0.0, fixed_disk = 0.0;
    for (std::size_t cls = 0; cls < kPatternClasses; ++cls) {
        auto stream = generateAccesses(static_cast<AccessPattern>(cls),
                                       4096, 1 << 20, rng);
        adaptive_disk += static_cast<double>(
            simulateReadahead(stream, kReadaheadPages[cls], 8192)
                .disk_reads);
        fixed_disk += static_cast<double>(
            simulateReadahead(stream, 64, 8192).disk_reads);
    }
    EXPECT_LT(adaptive_disk, fixed_disk);
}

} // namespace
} // namespace lake::fs
