// Tests for the simulated GPU: memory, kernels, timing, streams, NVML.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gpu/context.h"
#include "gpu/device.h"
#include "gpu/kernels.h"
#include "gpu/nvml.h"

namespace lake::gpu {
namespace {

class GpuTest : public ::testing::Test
{
  protected:
    GpuTest() : dev_(DeviceSpec::a100()), ctx_(dev_, clock_) {}

    Clock clock_;
    Device dev_;
    GpuContext ctx_;
};

TEST_F(GpuTest, MemAllocResolveFree)
{
    DevicePtr p = 0;
    ASSERT_EQ(ctx_.memAlloc(&p, 4096), CuResult::Success);
    EXPECT_NE(p, 0u);
    EXPECT_EQ(dev_.memUsed(), 4096u);

    void *host = dev_.resolve(p, 4096);
    ASSERT_NE(host, nullptr);
    // Interior pointers resolve too.
    EXPECT_EQ(dev_.resolve(p + 100, 3996),
              static_cast<std::uint8_t *>(host) + 100);
    // Out-of-bounds ranges do not.
    EXPECT_EQ(dev_.resolve(p + 100, 4000), nullptr);
    EXPECT_EQ(dev_.resolve(p - 1, 1), nullptr);

    EXPECT_EQ(ctx_.memFree(p), CuResult::Success);
    EXPECT_EQ(dev_.memUsed(), 0u);
    EXPECT_EQ(ctx_.memFree(p), CuResult::InvalidValue); // double free
}

TEST_F(GpuTest, AllocRejectsBadArgs)
{
    DevicePtr p = 0;
    EXPECT_EQ(ctx_.memAlloc(nullptr, 16), CuResult::InvalidValue);
    EXPECT_EQ(ctx_.memAlloc(&p, 0), CuResult::InvalidValue);
    EXPECT_EQ(ctx_.memAlloc(&p, dev_.spec().mem_capacity + 1),
              CuResult::OutOfMemory);
}

TEST_F(GpuTest, MemcpyRoundTrip)
{
    DevicePtr p = 0;
    ASSERT_EQ(ctx_.memAlloc(&p, 256), CuResult::Success);
    std::vector<std::uint8_t> src(256), dst(256);
    for (int i = 0; i < 256; ++i)
        src[i] = static_cast<std::uint8_t>(i);
    ASSERT_EQ(ctx_.memcpyHtoD(p, src.data(), 256), CuResult::Success);
    ASSERT_EQ(ctx_.memcpyDtoH(dst.data(), p, 256), CuResult::Success);
    EXPECT_EQ(src, dst);
}

TEST_F(GpuTest, VecAddComputesCorrectly)
{
    const std::uint64_t n = 1000;
    DevicePtr a = 0, b = 0, c = 0;
    ASSERT_EQ(ctx_.memAlloc(&a, n * 4), CuResult::Success);
    ASSERT_EQ(ctx_.memAlloc(&b, n * 4), CuResult::Success);
    ASSERT_EQ(ctx_.memAlloc(&c, n * 4), CuResult::Success);

    std::vector<float> ha(n), hb(n), hc(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        ha[i] = static_cast<float>(i);
        hb[i] = static_cast<float>(2 * i);
    }
    ctx_.memcpyHtoD(a, ha.data(), n * 4);
    ctx_.memcpyHtoD(b, hb.data(), n * 4);

    LaunchConfig cfg;
    cfg.kernel = "vec_add";
    cfg.grid_x = 4;
    cfg.block_x = 256;
    cfg.arg(a).arg(b).arg(c).arg(n, nullptr);
    ASSERT_EQ(ctx_.launchKernel(cfg), CuResult::Success);
    ASSERT_EQ(ctx_.ctxSynchronize(), CuResult::Success);

    ctx_.memcpyDtoH(hc.data(), c, n * 4);
    for (std::uint64_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(hc[i], 3.0f * static_cast<float>(i));
}

TEST_F(GpuTest, SaxpyComputesCorrectly)
{
    const std::uint64_t n = 64;
    DevicePtr x = 0, y = 0;
    ASSERT_EQ(ctx_.memAlloc(&x, n * 4), CuResult::Success);
    ASSERT_EQ(ctx_.memAlloc(&y, n * 4), CuResult::Success);
    std::vector<float> hx(n, 2.0f), hy(n, 10.0f);
    ctx_.memcpyHtoD(x, hx.data(), n * 4);
    ctx_.memcpyHtoD(y, hy.data(), n * 4);

    LaunchConfig cfg;
    cfg.kernel = "saxpy";
    cfg.argF(3.0f).arg(x).arg(y).arg(n, nullptr);
    ASSERT_EQ(ctx_.launchKernel(cfg), CuResult::Success);
    ctx_.ctxSynchronize();

    ctx_.memcpyDtoH(hy.data(), y, n * 4);
    for (std::uint64_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(hy[i], 16.0f);
}

TEST_F(GpuTest, UnknownKernelFailsLaunch)
{
    LaunchConfig cfg;
    cfg.kernel = "does_not_exist";
    EXPECT_EQ(ctx_.launchKernel(cfg), CuResult::NotFound);
}

TEST_F(GpuTest, KernelWithBadPointerFails)
{
    LaunchConfig cfg;
    cfg.kernel = "vec_add";
    cfg.arg(DevicePtr{1}).arg(DevicePtr{2}).arg(DevicePtr{3}).arg(
        std::uint64_t{10}, nullptr);
    EXPECT_EQ(ctx_.launchKernel(cfg), CuResult::LaunchFailed);
}

TEST_F(GpuTest, TransferTimeModel)
{
    const DeviceSpec &spec = dev_.spec();
    EXPECT_EQ(dev_.transferTime(0), spec.transfer_overhead);
    // 24 GB/s == 24 bytes/ns: 24 MB should take ~1 ms + overhead.
    Nanos t = dev_.transferTime(24 << 20);
    EXPECT_NEAR(static_cast<double>(t - spec.transfer_overhead), 1e6,
                1e6 * 0.05);
}

TEST_F(GpuTest, ComputeTimeRoofline)
{
    // Compute-bound: many flops over few bytes.
    Nanos ct = dev_.computeTime(1e9, 1024);
    EXPECT_NEAR(static_cast<double>(ct), 1e9 / dev_.spec().effective_gflops,
                1e3);
    // Memory-bound: few flops over many bytes.
    Nanos mt = dev_.computeTime(10.0, 1ull << 30);
    EXPECT_NEAR(static_cast<double>(mt),
                static_cast<double>(1ull << 30) / dev_.spec().mem_gbps,
                1e3);
}

TEST_F(GpuTest, SyncAdvancesClockAsyncDoesNot)
{
    DevicePtr p = 0;
    ctx_.memAlloc(&p, 1 << 20);
    std::vector<std::uint8_t> buf(1 << 20);

    Nanos t0 = clock_.now();
    ctx_.memcpyHtoD(p, buf.data(), buf.size());
    Nanos sync_cost = clock_.now() - t0;
    EXPECT_GT(sync_cost, dev_.transferTime(buf.size()) / 2);

    t0 = clock_.now();
    ctx_.memcpyHtoDAsync(p, buf.data(), buf.size(), 1);
    Nanos async_cost = clock_.now() - t0;
    EXPECT_LT(async_cost, sync_cost / 10); // only the driver call
    // Synchronize pays the deferred time.
    ctx_.streamSynchronize(1);
    EXPECT_GE(clock_.now(), t0 + dev_.transferTime(buf.size()));
}

TEST_F(GpuTest, StreamOrderingSerializesWork)
{
    DevicePtr p = 0;
    ctx_.memAlloc(&p, 4096);
    std::vector<float> buf(1024, 1.0f);

    // Two async copies on one stream: completion times accumulate.
    ctx_.memcpyHtoDAsync(p, buf.data(), 4096, 3);
    Nanos first_ready = ctx_.streamReadyAt(3);
    ctx_.memcpyHtoDAsync(p, buf.data(), 4096, 3);
    EXPECT_GE(ctx_.streamReadyAt(3),
              first_ready + dev_.transferTime(4096) - 1);
}

TEST_F(GpuTest, DefaultStreamOrdersSyncCopyAfterLaunch)
{
    const std::uint64_t n = 1 << 18;
    DevicePtr a = 0, b = 0, c = 0;
    ctx_.memAlloc(&a, n * 4);
    ctx_.memAlloc(&b, n * 4);
    ctx_.memAlloc(&c, n * 4);

    LaunchConfig cfg;
    cfg.kernel = "vec_add";
    cfg.arg(a).arg(b).arg(c).arg(n, nullptr);
    ASSERT_EQ(ctx_.launchKernel(cfg, 0), CuResult::Success);
    Nanos kernel_done = ctx_.streamReadyAt(0);

    std::vector<float> out(n);
    ctx_.memcpyDtoH(out.data(), c, n * 4);
    EXPECT_GE(clock_.now(), kernel_done);
}

TEST_F(GpuTest, UtilizationTracksKernels)
{
    Nvml nvml(dev_);
    EXPECT_DOUBLE_EQ(nvml.utilization(clock_.now()).gpu, 0.0);

    // Saturate the compute engine for a full sample window.
    dev_.reserveCompute(clock_.now(), Nvml::kSampleWindow);
    clock_.advance(Nvml::kSampleWindow);
    EXPECT_NEAR(nvml.utilization(clock_.now()).gpu, 100.0, 1.0);

    // After an idle window, utilization decays to zero.
    clock_.advance(2 * Nvml::kSampleWindow);
    EXPECT_NEAR(nvml.utilization(clock_.now()).gpu, 0.0, 1.0);
}

TEST_F(GpuTest, LaunchCountsAndOverhead)
{
    const std::uint64_t n = 16;
    DevicePtr a = 0, b = 0, c = 0;
    ctx_.memAlloc(&a, n * 4);
    ctx_.memAlloc(&b, n * 4);
    ctx_.memAlloc(&c, n * 4);

    LaunchConfig cfg;
    cfg.kernel = "vec_add";
    cfg.arg(a).arg(b).arg(c).arg(n, nullptr);

    std::uint64_t before = dev_.launches();
    Nanos ready_before = ctx_.streamReadyAt(0);
    ASSERT_EQ(ctx_.launchKernel(cfg, 0), CuResult::Success);
    EXPECT_EQ(dev_.launches(), before + 1);
    EXPECT_GE(ctx_.streamReadyAt(0),
              ready_before + dev_.spec().launch_overhead);
}

TEST(GpuSpecTest, ModestDeviceIsSlower)
{
    DeviceSpec big = DeviceSpec::a100();
    DeviceSpec small = DeviceSpec::modest();
    EXPECT_LT(small.effective_gflops, big.effective_gflops);
    EXPECT_LT(small.pcie_gbps, big.pcie_gbps);
    EXPECT_GT(small.launch_overhead, big.launch_overhead);
}

TEST(KernelRegistryTest, NamesAndReplacement)
{
    registerBuiltinKernels();
    KernelRegistry &reg = KernelRegistry::global();
    EXPECT_TRUE(reg.has("vec_add"));
    EXPECT_TRUE(reg.has("saxpy"));
    EXPECT_TRUE(reg.has("page_hash"));
    EXPECT_FALSE(reg.has("nope"));
    auto names = reg.names();
    EXPECT_GE(names.size(), 3u);
}

} // namespace
} // namespace lake::gpu
