// Tests for the lakeShm best-fit arena.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "base/rng.h"
#include "shm/arena.h"

namespace lake::shm {
namespace {

TEST(ShmArenaTest, AllocAndFree)
{
    ShmArena arena(1 << 16);
    ShmOffset a = arena.alloc(100);
    ASSERT_NE(a, kNullOffset);
    EXPECT_EQ(arena.liveAllocs(), 1u);
    EXPECT_GE(arena.sizeOf(a), 100u);
    std::memset(arena.at(a), 0xab, 100);
    arena.free(a);
    EXPECT_EQ(arena.liveAllocs(), 0u);
    EXPECT_EQ(arena.used(), 0u);
}

TEST(ShmArenaTest, DistinctBuffersDoNotAlias)
{
    ShmArena arena(1 << 16);
    ShmOffset a = arena.alloc(64);
    ShmOffset b = arena.alloc(64);
    ASSERT_NE(a, kNullOffset);
    ASSERT_NE(b, kNullOffset);
    std::memset(arena.at(a), 0x11, 64);
    std::memset(arena.at(b), 0x22, 64);
    EXPECT_EQ(static_cast<std::uint8_t *>(arena.at(a))[0], 0x11);
    EXPECT_EQ(static_cast<std::uint8_t *>(arena.at(b))[0], 0x22);
}

TEST(ShmArenaTest, BestFitPrefersSmallestHole)
{
    ShmArena arena(1 << 16);
    // Carve: [A:1024][B:64][C:4096][D:64][rest]; free A and C.
    ShmOffset a = arena.alloc(1024);
    ShmOffset b = arena.alloc(64);
    ShmOffset c = arena.alloc(4096);
    ShmOffset d = arena.alloc(64);
    (void)b;
    (void)d;
    arena.free(a);
    arena.free(c);
    // A 512-byte request best-fits into the 1024 hole, not the 4096.
    ShmOffset e = arena.alloc(512);
    EXPECT_EQ(e, a);
    // A 2048-byte request only fits the 4096 hole.
    ShmOffset f = arena.alloc(2048);
    EXPECT_EQ(f, c);
}

TEST(ShmArenaTest, CoalescingRebuildsLargeBlocks)
{
    ShmArena arena(1 << 14);
    std::vector<ShmOffset> blocks;
    for (int i = 0; i < 4; ++i)
        blocks.push_back(arena.alloc(1 << 12)); // fills the arena
    EXPECT_EQ(arena.alloc(64), kNullOffset);
    for (ShmOffset o : blocks)
        arena.free(o);
    // After coalescing the full arena is one hole again.
    EXPECT_EQ(arena.largestFree(), arena.capacity());
    EXPECT_NE(arena.alloc(arena.capacity() - ShmArena::kAlign),
              kNullOffset);
}

TEST(ShmArenaTest, ExhaustionReturnsNull)
{
    ShmArena arena(4096);
    EXPECT_NE(arena.alloc(4000), kNullOffset);
    EXPECT_EQ(arena.alloc(4096), kNullOffset);
}

TEST(ShmArenaTest, ZeroByteAllocationIsValid)
{
    ShmArena arena(4096);
    ShmOffset a = arena.alloc(0);
    ASSERT_NE(a, kNullOffset);
    arena.free(a);
}

class ShmArenaPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ShmArenaPropertyTest, RandomAllocFreeNeverCorrupts)
{
    // Shadow-model property test: random alloc/free traffic; every
    // live buffer keeps a unique fill byte; frees and reallocs must
    // never clobber another live buffer.
    ShmArena arena(1 << 18);
    Rng rng(GetParam());
    struct Live
    {
        ShmOffset off;
        std::size_t size;
        std::uint8_t fill;
    };
    std::vector<Live> live;
    std::uint8_t next_fill = 1;

    for (int step = 0; step < 2000; ++step) {
        bool do_alloc = live.empty() || rng.chance(0.55);
        if (do_alloc) {
            std::size_t size = rng.uniformInt(1, 4096);
            ShmOffset off = arena.alloc(size);
            if (off == kNullOffset)
                continue; // arena full; keep going
            std::uint8_t fill = next_fill++;
            if (next_fill == 0)
                next_fill = 1;
            std::memset(arena.at(off), fill, size);
            live.push_back({off, size, fill});
        } else {
            std::size_t idx = rng.uniformInt(0, live.size() - 1);
            Live victim = live[idx];
            const auto *p =
                static_cast<const std::uint8_t *>(arena.at(victim.off));
            for (std::size_t i = 0; i < victim.size; ++i)
                ASSERT_EQ(p[i], victim.fill) << "corruption at " << i;
            arena.free(victim.off);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    for (const Live &l : live)
        arena.free(l.off);
    EXPECT_EQ(arena.used(), 0u);
    EXPECT_EQ(arena.largestFree(), arena.capacity());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShmArenaPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------
// Placement equivalence: the size-ordered free index must pick the
// exact block the original linear scan picked
// ---------------------------------------------------------------------

/**
 * The seed allocator, reimplemented verbatim as a reference model: a
 * linear best-fit scan over an offset-ordered free list (first block
 * wins ties, i.e. lowest offset among equal sizes), split on alloc,
 * both-neighbour coalescing on free. ShmArena's O(log n) index must
 * return bit-identical offsets against this for any traffic, or the
 * layout — and every shm pointer a real workload derives from it —
 * silently changes.
 */
class ReferenceLinearArena
{
  public:
    explicit ReferenceLinearArena(std::size_t capacity)
        : capacity_(roundUp(capacity))
    {
        free_.emplace(0, capacity_);
    }

    ShmOffset
    alloc(std::size_t bytes)
    {
        if (bytes == 0)
            bytes = 1;
        std::size_t need = roundUp(bytes);
        auto best = free_.end();
        std::size_t best_size = ~std::size_t{0};
        for (auto it = free_.begin(); it != free_.end(); ++it) {
            if (it->second >= need && it->second < best_size) {
                best = it;
                best_size = it->second;
                if (best_size == need)
                    break;
            }
        }
        if (best == free_.end())
            return kNullOffset;
        ShmOffset offset = best->first;
        std::size_t block = best->second;
        free_.erase(best);
        if (block > need)
            free_.emplace(offset + need, block - need);
        live_.emplace(offset, need);
        return offset;
    }

    void
    free(ShmOffset offset)
    {
        auto it = live_.find(offset);
        ASSERT_NE(it, live_.end());
        auto [ins, ok] = free_.emplace(offset, it->second);
        ASSERT_TRUE(ok);
        live_.erase(it);
        auto next = std::next(ins);
        if (next != free_.end() && ins->first + ins->second == next->first) {
            ins->second += next->second;
            free_.erase(next);
        }
        if (ins != free_.begin()) {
            auto prev = std::prev(ins);
            if (prev->first + prev->second == ins->first) {
                prev->second += ins->second;
                free_.erase(ins);
            }
        }
    }

    std::size_t
    largestFree() const
    {
        std::size_t best = 0;
        for (const auto &[off, size] : free_)
            best = std::max(best, size);
        return best;
    }

  private:
    static std::size_t
    roundUp(std::size_t n)
    {
        return (n + ShmArena::kAlign - 1) / ShmArena::kAlign *
               ShmArena::kAlign;
    }

    std::size_t capacity_;
    std::map<ShmOffset, std::size_t> free_;
    std::map<ShmOffset, std::size_t> live_;
};

class ShmArenaEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ShmArenaEquivalenceTest, IndexMatchesLinearBestFitExactly)
{
    ShmArena arena(1 << 18);
    ReferenceLinearArena ref(1 << 18);
    Rng rng(GetParam());
    std::vector<ShmOffset> live;

    for (int step = 0; step < 4000; ++step) {
        bool do_alloc = live.empty() || rng.chance(0.55);
        if (do_alloc) {
            // Mix tiny, page-ish and huge requests so splits, exact
            // fits and exhaustion all occur.
            std::size_t size = rng.chance(0.1)
                                   ? rng.uniformInt(1, 1 << 17)
                                   : rng.uniformInt(1, 4096);
            ShmOffset got = arena.alloc(size);
            ShmOffset want = ref.alloc(size);
            ASSERT_EQ(got, want) << "step " << step << " size " << size;
            if (got != kNullOffset)
                live.push_back(got);
        } else {
            std::size_t idx = rng.uniformInt(0, live.size() - 1);
            ShmOffset off = live[idx];
            arena.free(off);
            ref.free(off);
            live[idx] = live.back();
            live.pop_back();
        }
        if (step % 64 == 0) {
            ASSERT_EQ(arena.largestFree(), ref.largestFree());
        }
    }
    for (ShmOffset off : live) {
        arena.free(off);
        ref.free(off);
    }
    EXPECT_EQ(arena.largestFree(), ref.largestFree());
    EXPECT_EQ(arena.largestFree(), arena.capacity());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShmArenaEquivalenceTest,
                         ::testing::Values(2, 3, 5, 7, 11, 13));

TEST(ShmArenaTest, ValidRangeTracksLiveAllocations)
{
    ShmArena arena(1 << 16);
    ShmOffset a = arena.alloc(256);
    ASSERT_NE(a, kNullOffset);

    // Whole allocation and interior windows are valid; the offset must
    // itself point into the allocation (one-past-end is out).
    EXPECT_TRUE(arena.validRange(a, 256));
    EXPECT_TRUE(arena.validRange(a + 16, 64));
    EXPECT_FALSE(arena.validRange(a + arena.sizeOf(a), 0));
    // sizeOf may round up to the alignment quantum; anything past the
    // rounded size is out.
    EXPECT_FALSE(arena.validRange(a, arena.sizeOf(a) + 1));
    // Free space and out-of-region offsets are never valid.
    EXPECT_FALSE(arena.validRange(a + (1 << 12), 1));
    EXPECT_FALSE(arena.validRange(arena.capacity(), 1));
    EXPECT_FALSE(arena.validRange(arena.capacity() + 4096, 1));

    arena.free(a);
    EXPECT_FALSE(arena.validRange(a, 1));
}

TEST(ShmArenaTest, ValidRangeRejectsOverflowingLengths)
{
    ShmArena arena(1 << 16);
    ShmOffset a = arena.alloc(256);
    ASSERT_NE(a, kNullOffset);
    // offset + bytes wrapping past UINT64_MAX must not pass.
    EXPECT_FALSE(arena.validRange(a, ~std::size_t{0} - 8));
    EXPECT_FALSE(arena.validRange(a + 128, ~std::size_t{0}));
}

} // namespace
} // namespace lake::shm
