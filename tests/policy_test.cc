// Tests for execution policies and the eBPF-like policy VM.

#include <gtest/gtest.h>

#include "policy/bpf.h"
#include "policy/mlgate.h"
#include "policy/policy.h"

namespace lake::policy {
namespace {

TEST(PolicyTest, AlwaysPolicies)
{
    AlwaysCpuPolicy cpu;
    AlwaysGpuPolicy gpu;
    PolicyInput in;
    in.batch_size = 1000;
    EXPECT_EQ(cpu.decide(in), Engine::Cpu);
    EXPECT_EQ(gpu.decide(in), Engine::Gpu);
}

TEST(PolicyTest, BatchThreshold)
{
    BatchThresholdPolicy p(8);
    PolicyInput in;
    in.batch_size = 7;
    EXPECT_EQ(p.decide(in), Engine::Cpu);
    in.batch_size = 8;
    EXPECT_EQ(p.decide(in), Engine::Gpu);
    in.batch_size = 9;
    EXPECT_EQ(p.decide(in), Engine::Gpu);
}

TEST(ContentionPolicyTest, FallsBackUnderContention)
{
    double util = 0.0;
    int probes = 0;
    ContentionAwarePolicy::Config cfg;
    cfg.probe_interval = 5_ms;
    cfg.avg_window = 2;
    cfg.exec_threshold = 40.0;
    cfg.batch_threshold = 4;
    ContentionAwarePolicy p(
        [&](Nanos) {
            ++probes;
            return util;
        },
        cfg);

    PolicyInput in;
    in.batch_size = 16;
    in.now = 0;
    EXPECT_EQ(p.decide(in), Engine::Gpu); // idle GPU, big batch

    // GPU becomes contended: avg (0+90)/2 = 45 >= 40 -> CPU.
    util = 90.0;
    in.now = 5_ms;
    EXPECT_EQ(p.decide(in), Engine::Cpu);
    in.now = 10_ms;
    EXPECT_EQ(p.decide(in), Engine::Cpu); // avg now 90
    // GPU frees up; one probe halves the average (45, still over)...
    util = 0.0;
    in.now = 15_ms;
    EXPECT_EQ(p.decide(in), Engine::Cpu);
    // ...and the second brings it to 0: reclaim the GPU.
    in.now = 20_ms;
    EXPECT_EQ(p.decide(in), Engine::Gpu);
}

TEST(ContentionPolicyTest, ProbeRateLimited)
{
    int probes = 0;
    ContentionAwarePolicy::Config cfg;
    cfg.probe_interval = 5_ms;
    ContentionAwarePolicy p(
        [&](Nanos) {
            ++probes;
            return 0.0;
        },
        cfg);

    PolicyInput in;
    in.batch_size = 100;
    for (Nanos t = 0; t < 5_ms; t += 100_us) {
        in.now = t;
        p.decide(in);
    }
    EXPECT_EQ(probes, 1); // one probe in the first 5 ms window
    in.now = 5_ms;
    p.decide(in);
    EXPECT_EQ(probes, 2);
}

// Regression (ISSUE 7): utilization is only sampled inside decide(),
// so the first decision after a long idle gap averaged one fresh probe
// against readings of arbitrary age. A bursty arrival trace — busy
// phase, long gap, burst — must not steer the post-gap burst by
// contention observed before the gap.
TEST(ContentionPolicyTest, DropsStaleWindowAfterIdleGap)
{
    double util = 90.0;
    ContentionAwarePolicy::Config cfg;
    cfg.probe_interval = 5_ms;
    cfg.avg_window = 4;
    cfg.exec_threshold = 40.0;
    cfg.batch_threshold = 4;
    cfg.stale_windows = 8; // window is stale after 40 ms unprobed
    ContentionAwarePolicy p([&](Nanos) { return util; }, cfg);

    PolicyInput in;
    in.batch_size = 16;
    // Busy phase: the window fills with high readings.
    for (Nanos t = 0; t <= 15_ms; t += 5_ms) {
        in.now = t;
        EXPECT_EQ(p.decide(in), Engine::Cpu);
    }
    EXPECT_NEAR(p.smoothedUtilization(), 90.0, 1e-9);

    // Long idle gap; the GPU drains to 0% during it. The first
    // post-gap decision must act on a fresh probe, not on a window
    // whose newest reading is 485 ms old (pre-fix: (90*3 + 0)/4 =
    // 67.5 >= 40 -> Cpu even though the GPU is idle).
    util = 0.0;
    in.now = 500_ms;
    EXPECT_EQ(p.decide(in), Engine::Gpu);
    EXPECT_NEAR(p.smoothedUtilization(), 0.0, 1e-9);
}

TEST(ContentionPolicyTest, StaleResetDisabledKeepsWindow)
{
    double util = 90.0;
    ContentionAwarePolicy::Config cfg;
    cfg.probe_interval = 5_ms;
    cfg.avg_window = 4;
    cfg.exec_threshold = 40.0;
    cfg.batch_threshold = 4;
    cfg.stale_windows = 0; // opt out: pre-fix smoothing semantics
    ContentionAwarePolicy p([&](Nanos) { return util; }, cfg);

    PolicyInput in;
    in.batch_size = 16;
    for (Nanos t = 0; t <= 15_ms; t += 5_ms) {
        in.now = t;
        p.decide(in);
    }
    util = 0.0;
    in.now = 500_ms;
    // With the reset disabled the stale readings still dominate.
    EXPECT_EQ(p.decide(in), Engine::Cpu);
    EXPECT_NEAR(p.smoothedUtilization(), 67.5, 1e-9);
}

// Regression (ISSUE 7): `in.now - last_probe_` is unsigned; a
// non-monotone `now` (two sync score paths sharing one policy) wrapped
// the interval check and defeated the probe rate limit.
TEST(ContentionPolicyTest, NonMonotoneNowDoesNotWrapProbeInterval)
{
    int probes = 0;
    ContentionAwarePolicy::Config cfg;
    cfg.probe_interval = 5_ms;
    cfg.avg_window = 4;
    ContentionAwarePolicy p(
        [&](Nanos) {
            ++probes;
            return 0.0;
        },
        cfg);

    PolicyInput in;
    in.batch_size = 100;
    in.now = 10_ms;
    p.decide(in);
    EXPECT_EQ(probes, 1);
    // 1 ms in the past: must read as "no time elapsed", not as a
    // 2^64-scale interval (pre-fix: re-probes, and with the staleness
    // bound would also wrongly drop the window).
    in.now = 9_ms;
    p.decide(in);
    EXPECT_EQ(probes, 1);
    // Time resumes: the rate limit picks up from the newest probe.
    in.now = 15_ms;
    p.decide(in);
    EXPECT_EQ(probes, 2);
}

TEST(ContentionPolicyTest, SmallBatchStaysOnCpu)
{
    ContentionAwarePolicy::Config cfg;
    cfg.batch_threshold = 8;
    ContentionAwarePolicy p([](Nanos) { return 0.0; }, cfg);
    PolicyInput in;
    in.batch_size = 3;
    EXPECT_EQ(p.decide(in), Engine::Cpu);
}

// ---- MlGate (§7.1 future-work modulation) ---------------------------

TEST(MlGateTest, StartsOpenAndStaysOpenWhileUseful)
{
    MlGate::Config cfg;
    cfg.window = 64;
    cfg.min_positive_rate = 0.01;
    MlGate gate(cfg);

    for (int i = 0; i < 20; ++i) {
        EXPECT_TRUE(gate.shouldInfer(i * 1_ms));
        gate.observe(2, 16, i * 1_ms); // 12.5% positives: ML is useful
    }
    EXPECT_FALSE(gate.gated());
    EXPECT_EQ(gate.closures(), 0u);
}

TEST(MlGateTest, ClosesAfterAWindowOfNothing)
{
    MlGate::Config cfg;
    cfg.window = 64;
    cfg.min_positive_rate = 0.01;
    MlGate gate(cfg);

    Nanos t = 0;
    while (!gate.gated()) {
        ASSERT_TRUE(gate.shouldInfer(t));
        gate.observe(0, 16, t);
        t += 1_ms;
        ASSERT_LT(t, 1_s) << "gate never closed";
    }
    EXPECT_EQ(gate.closures(), 1u);
    // Immediately after closing, inference is suppressed...
    EXPECT_FALSE(gate.shouldInfer(t));
}

TEST(MlGateTest, ProbesWhileClosedAndReopensOnPositives)
{
    MlGate::Config cfg;
    cfg.window = 32;
    cfg.min_positive_rate = 0.01;
    cfg.probe_interval = 10_ms;
    MlGate gate(cfg);

    Nanos t = 0;
    for (int i = 0; i < 4; ++i, t += 1_ms) {
        gate.shouldInfer(t);
        gate.observe(0, 16, t);
    }
    ASSERT_TRUE(gate.gated());

    // Within the probe interval: suppressed.
    EXPECT_FALSE(gate.shouldInfer(t + 1_ms));
    // After it: one probe allowed.
    Nanos probe_t = t + 11_ms;
    EXPECT_TRUE(gate.shouldInfer(probe_t));
    // A fruitless probe keeps the gate closed...
    gate.observe(0, 16, probe_t);
    EXPECT_TRUE(gate.gated());
    EXPECT_FALSE(gate.shouldInfer(probe_t + 1_ms));
    // ...a fruitful one reopens it.
    Nanos probe2 = probe_t + 11_ms;
    ASSERT_TRUE(gate.shouldInfer(probe2));
    gate.observe(3, 16, probe2);
    EXPECT_FALSE(gate.gated());
    EXPECT_EQ(gate.reopenings(), 1u);
}

TEST(MlGateTest, EmptyObservationsIgnored)
{
    MlGate gate;
    gate.observe(0, 0, 0);
    EXPECT_FALSE(gate.gated());
}

// Regression (ISSUE 7 wrap audit): a shouldInfer()/probeDue() call
// with `now` earlier than the gate-closing observation wrapped
// `now - last_probe_` and released a probe immediately.
TEST(MlGateTest, NonMonotoneNowDoesNotReleaseProbe)
{
    MlGate::Config cfg;
    cfg.window = 4;
    cfg.min_positive_rate = 0.5;
    cfg.probe_interval = 10_ms;
    MlGate gate(cfg);

    gate.shouldInfer(20_ms);
    gate.observe(0, 4, 20_ms); // closes the gate, last probe = 20 ms
    ASSERT_TRUE(gate.gated());

    EXPECT_FALSE(gate.probeDue(15_ms));
    EXPECT_FALSE(gate.shouldInfer(15_ms));
    // Monotone behaviour unchanged: a probe is due after the interval.
    EXPECT_TRUE(gate.probeDue(30_ms));
    EXPECT_TRUE(gate.shouldInfer(30_ms));
}

// ---- BPF VM ---------------------------------------------------------

TEST(BpfVerifierTest, RejectsEmptyProgram)
{
    BpfVm vm;
    EXPECT_FALSE(vm.verify({}, 4).isOk());
}

TEST(BpfVerifierTest, RejectsMissingExit)
{
    BpfVm vm;
    std::vector<BpfInsn> prog = {{BpfOp::MovImm, 0, 0, 0, 1}};
    EXPECT_FALSE(vm.verify(prog, 4).isOk());
}

TEST(BpfVerifierTest, RejectsBackwardJump)
{
    BpfVm vm;
    std::vector<BpfInsn> prog = {
        {BpfOp::MovImm, 0, 0, 0, 0},
        {BpfOp::Ja, 0, 0, -1, 0},
        {BpfOp::Exit, 0, 0, 0, 0},
    };
    Status st = vm.verify(prog, 4);
    EXPECT_FALSE(st.isOk());
    EXPECT_NE(st.message().find("backward"), std::string::npos);
}

TEST(BpfVerifierTest, RejectsJumpPastEnd)
{
    BpfVm vm;
    std::vector<BpfInsn> prog = {
        {BpfOp::Ja, 0, 0, 5, 0},
        {BpfOp::Exit, 0, 0, 0, 0},
    };
    EXPECT_FALSE(vm.verify(prog, 4).isOk());
}

TEST(BpfVerifierTest, RejectsBadRegisters)
{
    BpfVm vm;
    std::vector<BpfInsn> prog = {
        {BpfOp::MovImm, 11, 0, 0, 0}, // r11 does not exist
        {BpfOp::Exit, 0, 0, 0, 0},
    };
    EXPECT_FALSE(vm.verify(prog, 4).isOk());
}

TEST(BpfVerifierTest, RejectsOutOfBoundsContext)
{
    BpfVm vm;
    std::vector<BpfInsn> prog = {
        {BpfOp::LdCtx, 1, 0, 0, 4}, // ctx has 4 slots: 0..3
        {BpfOp::Exit, 0, 0, 0, 0},
    };
    EXPECT_FALSE(vm.verify(prog, 4).isOk());
    prog[0].imm = 3;
    EXPECT_TRUE(vm.verify(prog, 4).isOk());
}

TEST(BpfVerifierTest, RejectsUnregisteredHelper)
{
    BpfVm vm;
    std::vector<BpfInsn> prog = {
        {BpfOp::Call, 0, 0, 0, 7},
        {BpfOp::Exit, 0, 0, 0, 0},
    };
    EXPECT_FALSE(vm.verify(prog, 4).isOk());
    vm.registerHelper(7, [](const auto &) { return 0ull; });
    EXPECT_TRUE(vm.verify(prog, 4).isOk());
}

TEST(BpfVerifierTest, RejectsHugeShift)
{
    BpfVm vm;
    std::vector<BpfInsn> prog = {
        {BpfOp::LshImm, 0, 0, 0, 64},
        {BpfOp::Exit, 0, 0, 0, 0},
    };
    EXPECT_FALSE(vm.verify(prog, 4).isOk());
}

TEST(BpfRunTest, Arithmetic)
{
    BpfVm vm;
    BpfProgramBuilder b;
    // r0 = ((5 + 10) * 4 - 8) / 2 % 7 = 52/2=26 % 7 = 5
    b.movImm(0, 5).addImm(0, 10);
    b.emit({BpfOp::MulImm, 0, 0, 0, 4});
    b.emit({BpfOp::SubImm, 0, 0, 0, 8});
    b.emit({BpfOp::DivImm, 0, 0, 0, 2});
    b.emit({BpfOp::ModImm, 0, 0, 0, 7});
    b.exit();
    auto prog = b.take();
    ASSERT_TRUE(vm.verify(prog, 0).isOk());
    EXPECT_EQ(vm.run(prog, {}), 5u);
}

TEST(BpfRunTest, DivisionByZeroYieldsZero)
{
    BpfVm vm;
    BpfProgramBuilder b;
    b.movImm(0, 100);
    b.emit({BpfOp::DivImm, 0, 0, 0, 0});
    b.exit();
    auto prog = b.take();
    ASSERT_TRUE(vm.verify(prog, 0).isOk());
    EXPECT_EQ(vm.run(prog, {}), 0u); // eBPF semantics
}

TEST(BpfRunTest, BranchesAndContext)
{
    BpfVm vm;
    BpfProgramBuilder b;
    // r0 = ctx[0] >= 10 ? 1 : 0
    b.ldCtx(1, 0).movImm(0, 0).jltImm(1, 10, 1).movImm(0, 1).exit();
    auto prog = b.take();
    ASSERT_TRUE(vm.verify(prog, 1).isOk());
    EXPECT_EQ(vm.run(prog, {9}), 0u);
    EXPECT_EQ(vm.run(prog, {10}), 1u);
    EXPECT_EQ(vm.run(prog, {11}), 1u);
}

TEST(BpfRunTest, HelperCalls)
{
    BpfVm vm;
    vm.registerHelper(1, [](const std::array<std::uint64_t, 5> &args) {
        return args[0] * 2 + args[1];
    });
    BpfProgramBuilder b;
    b.movImm(1, 20).movImm(2, 2).call(1).exit();
    auto prog = b.take();
    ASSERT_TRUE(vm.verify(prog, 0).isOk());
    EXPECT_EQ(vm.run(prog, {}), 42u);
}

// Regression (ISSUE 7 wrap audit): BpfPolicy shares the rate-limited
// probe pattern and wrapped the same unsigned subtraction.
TEST(BpfPolicyTest, NonMonotoneNowDoesNotWrapProbeInterval)
{
    BpfVm vm;
    int probes = 0;
    BpfPolicy::Config cfg;
    cfg.probe_interval = 5_ms;
    cfg.avg_window = 2;
    BpfPolicy p(vm, buildFig3Program(40.0, 8),
                [&](Nanos) {
                    ++probes;
                    return 0.0;
                },
                cfg);

    PolicyInput in;
    in.batch_size = 16;
    in.now = 10_ms;
    p.decide(in);
    EXPECT_EQ(probes, 1);
    in.now = 8_ms; // in the past: no wrap, no probe
    p.decide(in);
    EXPECT_EQ(probes, 1);
    in.now = 15_ms;
    p.decide(in);
    EXPECT_EQ(probes, 2);
}

class Fig3EquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(Fig3EquivalenceTest, BytecodeMatchesNativePolicy)
{
    // The bytecode Fig. 3 policy must agree with the native
    // ContentionAwarePolicy decision for the same inputs.
    auto [batch, util_pct] = GetParam();

    BpfVm vm;
    auto prog = buildFig3Program(40.0, 8);
    ASSERT_TRUE(vm.verify(prog, kCtxSlotCount).isOk());

    std::vector<std::uint64_t> ctx(kCtxSlotCount, 0);
    ctx[kCtxBatchSize] = static_cast<std::uint64_t>(batch);
    ctx[kCtxGpuUtilX100] = static_cast<std::uint64_t>(util_pct * 100);
    bool bytecode_gpu = vm.run(prog, ctx) != 0;

    bool native_gpu = util_pct < 40 && batch >= 8;
    EXPECT_EQ(bytecode_gpu, native_gpu)
        << "batch=" << batch << " util=" << util_pct;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Fig3EquivalenceTest,
    ::testing::Combine(::testing::Values(1, 4, 7, 8, 9, 64, 1024),
                       ::testing::Values(0, 10, 39, 40, 41, 99)));

TEST(BpfPolicyTest, DecidesThroughVm)
{
    BpfVm vm;
    double util = 0.0;
    BpfPolicy::Config cfg;
    cfg.avg_window = 1;
    BpfPolicy policy(vm, buildFig3Program(40.0, 8),
                     [&](Nanos) { return util; }, cfg);

    PolicyInput in;
    in.batch_size = 16;
    in.now = 0;
    EXPECT_EQ(policy.decide(in), Engine::Gpu);

    util = 80.0;
    in.now = 10_ms;
    EXPECT_EQ(policy.decide(in), Engine::Cpu);

    in.batch_size = 2;
    util = 0.0;
    in.now = 20_ms;
    EXPECT_EQ(policy.decide(in), Engine::Cpu);
}

} // namespace
} // namespace lake::policy
