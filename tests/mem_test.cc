// Tests for the Kleio page-warmth substrate (§7.2).

#include <gtest/gtest.h>

#include "mem/pagewarmth.h"

namespace lake::mem {
namespace {

TEST(PageGenTest, BehavioursHaveExpectedWarmth)
{
    Rng rng(83);
    auto pages = generatePageHistories(2000, 32, rng);
    ASSERT_EQ(pages.size(), 2000u);

    double hot_mean = 0.0, cold_mean = 0.0;
    std::size_t hot_n = 0, cold_n = 0;
    for (const auto &p : pages) {
        double sum = 0.0;
        for (float c : p.counts)
            sum += c;
        if (p.behavior == PageBehavior::SteadyHot) {
            hot_mean += sum;
            ++hot_n;
        } else if (p.behavior == PageBehavior::Cold) {
            cold_mean += sum;
            ++cold_n;
        }
    }
    ASSERT_GT(hot_n, 0u);
    ASSERT_GT(cold_n, 0u);
    EXPECT_GT(hot_mean / hot_n, 20.0 * (cold_mean / cold_n + 1.0));
}

TEST(PageGenTest, HistoryBaselineTracksSteadyPages)
{
    Rng rng(89);
    auto pages = generatePageHistories(3000, 32, rng);
    std::size_t correct = 0, steady = 0;
    for (const auto &p : pages) {
        if (p.behavior != PageBehavior::SteadyHot &&
            p.behavior != PageBehavior::Cold)
            continue;
        ++steady;
        bool hot = p.next_count >= kHotThreshold;
        if (historyPredictsHot(p) == hot)
            ++correct;
    }
    ASSERT_GT(steady, 0u);
    // On steady pages the reactive baseline is nearly perfect...
    EXPECT_GT(static_cast<double>(correct) / steady, 0.95);
}

TEST(PageGenTest, HistoryBaselineStrugglesOnPeriodicPages)
{
    // ...but periodic pages defeat it often enough to motivate ML —
    // Kleio's founding observation.
    Rng rng(97);
    auto pages = generatePageHistories(4000, 32, rng);
    std::size_t correct = 0, periodic = 0;
    for (const auto &p : pages) {
        if (p.behavior != PageBehavior::Periodic)
            continue;
        ++periodic;
        bool hot = p.next_count >= kHotThreshold;
        if (historyPredictsHot(p) == hot)
            ++correct;
    }
    ASSERT_GT(periodic, 100u);
    EXPECT_LT(static_cast<double>(correct) / periodic, 0.90);
}

TEST(PlacementTest, OracleIsOptimal)
{
    Rng rng(101);
    auto pages = generatePageHistories(1000, 32, rng);
    std::vector<float> oracle_scores(pages.size());
    for (std::size_t i = 0; i < pages.size(); ++i)
        oracle_scores[i] = pages[i].next_count;

    TierSpec tiers;
    auto outcome = scorePlacement(pages, oracle_scores, tiers);
    EXPECT_NEAR(outcome.slowdown_vs_oracle, 1.0, 1e-9);
}

TEST(PlacementTest, RandomPlacementIsWorseThanOracle)
{
    Rng rng(103);
    auto pages = generatePageHistories(1000, 32, rng);
    std::vector<float> random_scores(pages.size());
    for (auto &s : random_scores)
        s = static_cast<float>(rng.uniform01());

    TierSpec tiers;
    auto outcome = scorePlacement(pages, random_scores, tiers);
    EXPECT_GT(outcome.slowdown_vs_oracle, 1.1);
    EXPECT_GT(outcome.hot_misplaced_fraction, 0.2);
}

TEST(PlacementTest, HistoryBaselineBetweenRandomAndOracle)
{
    Rng rng(107);
    auto pages = generatePageHistories(1000, 32, rng);

    std::vector<float> hist_scores(pages.size());
    for (std::size_t i = 0; i < pages.size(); ++i) {
        double ewma = 0.0;
        for (float c : pages[i].counts)
            ewma = 0.6 * ewma + 0.4 * c;
        hist_scores[i] = static_cast<float>(ewma);
    }
    std::vector<float> random_scores(pages.size());
    for (auto &s : random_scores)
        s = static_cast<float>(rng.uniform01());

    TierSpec tiers;
    double hist = scorePlacement(pages, hist_scores, tiers)
                      .slowdown_vs_oracle;
    double random = scorePlacement(pages, random_scores, tiers)
                        .slowdown_vs_oracle;
    EXPECT_LT(hist, random);
    EXPECT_GE(hist, 1.0);
}

TEST(LstmBatchTest, LayoutAndNormalization)
{
    Rng rng(109);
    auto pages = generatePageHistories(10, 16, rng);
    auto batch = toLstmBatch(pages, 16);
    ASSERT_EQ(batch.size(), 160u);
    for (float v : batch) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.5f);
    }
    EXPECT_FLOAT_EQ(batch[0], pages[0].counts[0] / 40.0f);
}

} // namespace
} // namespace lake::mem
