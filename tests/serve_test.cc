// Tests for the multi-tenant serving front end (DESIGN.md §11): the
// token-bucket admission filter, trace parsing, bounded per-tenant
// queues with shed-on-pressure, DRR fair dispatch, open-loop replay
// determinism, teardown with in-flight tenants, and the thread-safety
// of the offer()/pump() surface.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "base/time.h"
#include "registry/manager.h"
#include "serve/serve.h"
#include "serve/tenant.h"
#include "serve/traffic.h"

using namespace lake;

namespace {

constexpr const char *kSys = "serve_slo";

/** Writes @p body to a fresh temp file and returns its path. */
std::string
tempTrace(const std::string &tag, const std::string &body)
{
    std::string path =
        ::testing::TempDir() + "serve_trace_" + tag + ".txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr);
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return path;
}

/** A manager with @p shards registries and a trivial CPU classifier
 *  that charges @p cost virtual ns per batch to the shared clock. */
struct Harness
{
    Clock clock;
    registry::RegistryManager mgr{clock};
    std::vector<std::string> shards;

    explicit Harness(std::size_t nshards = 2, Nanos cost = 0,
                     registry::ScoringConfig scfg = {})
    {
        registry::Classifier classify =
            [this, cost](const std::vector<registry::FeatureVector> &fvs) {
                if (cost > 0)
                    clock.advance(cost);
                return std::vector<float>(fvs.size(), 1.0f);
            };
        registry::Schema schema;
        schema.add("tenant");
        for (std::size_t i = 0; i < nshards; ++i) {
            shards.push_back("shard" + std::to_string(i));
            EXPECT_TRUE(
                mgr.createRegistry(shards.back(), kSys, schema, 4).isOk());
            EXPECT_TRUE(mgr.find(shards.back(), kSys)
                            ->registerClassifier(registry::Arch::Cpu,
                                                 classify)
                            .isOk());
        }
        scfg.enabled = true;
        EXPECT_TRUE(mgr.enableScoring(scfg).isOk());
    }
};

// ---- TokenBucket ---------------------------------------------------

TEST(TokenBucketTest, BurstThenSustainedRate)
{
    serve::TokenBucket b(1000.0, 4.0); // 1 token/ms, 4-token burst
    // The burst drains at once...
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(b.tryAcquire(0));
    EXPECT_FALSE(b.tryAcquire(0));
    // ...then refill paces admission at the configured rate.
    EXPECT_FALSE(b.tryAcquire(500_us));
    EXPECT_TRUE(b.tryAcquire(1_ms));
    EXPECT_FALSE(b.tryAcquire(1_ms));
    EXPECT_TRUE(b.tryAcquire(2_ms));
}

TEST(TokenBucketTest, RefillCapsAtBurst)
{
    serve::TokenBucket b(1000.0, 4.0);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(b.tryAcquire(0));
    // A long idle gap earns at most `burst` tokens, not rate * gap.
    EXPECT_DOUBLE_EQ(b.available(10_s), 4.0);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(b.tryAcquire(10_s));
    EXPECT_FALSE(b.tryAcquire(10_s));
}

TEST(TokenBucketTest, BackwardsProbeDoesNotWrapRefill)
{
    serve::TokenBucket b(1000.0, 4.0);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(b.tryAcquire(1_ms));
    // A probe earlier than the last refill must not treat the
    // unsigned gap as ~2^64 ns of refill credit: the bucket stays
    // empty instead of snapping back to full burst.
    EXPECT_FALSE(b.tryAcquire(500_us));
    EXPECT_DOUBLE_EQ(b.available(500_us), 0.0);
    // Time resuming forward refills from the clamped point.
    EXPECT_TRUE(b.tryAcquire(2_ms));
}

// ---- trace parsing -------------------------------------------------

TEST(ServeTraceTest, ParsesTimesCommentsAndBlankLines)
{
    std::string path = tempTrace("ok", "# demo trace\n"
                                       "\n"
                                       "0 0\n"
                                       "  100 1  \n"
                                       "100 0\n"
                                       "250 2\n");
    std::vector<serve::TraceEntry> out;
    ASSERT_TRUE(serve::loadTrace(path, 3, out).isOk());
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].at, 0u);
    EXPECT_EQ(out[1].at, 100_us);
    EXPECT_EQ(out[1].tenant, 1u);
    EXPECT_EQ(out[2].at, 100_us);
    EXPECT_EQ(out[3].at, 250_us);
    EXPECT_EQ(out[3].tenant, 2u);
}

TEST(ServeTraceTest, RejectsMalformedInput)
{
    std::vector<serve::TraceEntry> out;
    Status st = serve::loadTrace(
        tempTrace("garbled", "12 0\npotato\n"), 2, out);
    EXPECT_EQ(st.code(), Code::InvalidArgument);
    EXPECT_TRUE(out.empty());

    st = serve::loadTrace(tempTrace("no_tenant", "12\n"), 2, out);
    EXPECT_EQ(st.code(), Code::InvalidArgument);

    st = serve::loadTrace(tempTrace("trailing", "12 0 extra\n"), 2, out);
    EXPECT_EQ(st.code(), Code::InvalidArgument);

    st = serve::loadTrace(
        tempTrace("backwards", "100 0\n50 1\n"), 2, out);
    EXPECT_EQ(st.code(), Code::InvalidArgument);

    st = serve::loadTrace(tempTrace("tenant_oob", "10 5\n"), 2, out);
    EXPECT_EQ(st.code(), Code::InvalidArgument);

    st = serve::loadTrace("/nonexistent/serve.trace", 2, out);
    EXPECT_EQ(st.code(), Code::NotFound);
}

// ---- admission + bounded queues ------------------------------------

TEST(TrafficGeneratorTest, BucketRejectsOverRateArrivals)
{
    Harness h;
    serve::ServeConfig cfg;
    cfg.tenants = 1;
    cfg.bucket_rate = 1000.0;
    cfg.bucket_burst = 2.0;
    cfg.queue_capacity = 64;
    serve::TrafficGenerator gen(h.mgr, h.clock, cfg, kSys, h.shards);

    EXPECT_TRUE(gen.offer(0, 0).isOk());
    EXPECT_TRUE(gen.offer(0, 0).isOk());
    Status st = gen.offer(0, 0); // burst exhausted
    EXPECT_EQ(st.code(), Code::ResourceExhausted);
    EXPECT_TRUE(gen.offer(0, 1_ms).isOk()); // refilled

    const serve::Tenant &t = gen.tenantStates()[0];
    EXPECT_EQ(t.arrivals, 4u);
    EXPECT_EQ(t.admits, 3u);
    EXPECT_EQ(t.bucket_rejects, 1u);
}

TEST(TrafficGeneratorTest, FullQueueShedsOldest)
{
    Harness h;
    serve::ServeConfig cfg;
    cfg.tenants = 1;
    cfg.bucket_rate = 1e9; // admission never the limiter here
    cfg.bucket_burst = 1e9;
    cfg.queue_capacity = 3;
    cfg.shed_oldest = true;
    serve::TrafficGenerator gen(h.mgr, h.clock, cfg, kSys, h.shards);

    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(gen.offer(0, static_cast<Nanos>(i)).isOk());
    const serve::Tenant &t = gen.tenantStates()[0];
    EXPECT_EQ(t.queue_sheds, 2u);
    ASSERT_EQ(t.queue.size(), 3u);
    // The two *oldest* arrivals were dropped; the queue holds 2,3,4.
    EXPECT_EQ(t.queue.front().arrival, 2u);
    EXPECT_EQ(t.queue.back().arrival, 4u);
}

TEST(TrafficGeneratorTest, FullQueueRejectsNewWhenShedDisabled)
{
    Harness h;
    serve::ServeConfig cfg;
    cfg.tenants = 1;
    cfg.bucket_rate = 1e9;
    cfg.bucket_burst = 1e9;
    cfg.queue_capacity = 2;
    cfg.shed_oldest = false;
    serve::TrafficGenerator gen(h.mgr, h.clock, cfg, kSys, h.shards);

    EXPECT_TRUE(gen.offer(0, 0).isOk());
    EXPECT_TRUE(gen.offer(0, 1).isOk());
    EXPECT_EQ(gen.offer(0, 2).code(), Code::ResourceExhausted);
    const serve::Tenant &t = gen.tenantStates()[0];
    ASSERT_EQ(t.queue.size(), 2u);
    EXPECT_EQ(t.queue.front().arrival, 0u); // oldest preserved
    EXPECT_EQ(t.queue_sheds, 1u);
}

// ---- dispatch ------------------------------------------------------

TEST(TrafficGeneratorTest, PumpDispatchesAndCompletes)
{
    Harness h;
    serve::ServeConfig cfg;
    cfg.tenants = 4;
    cfg.bucket_rate = 1e9;
    cfg.bucket_burst = 1e9;
    serve::TrafficGenerator gen(h.mgr, h.clock, cfg, kSys, h.shards);

    for (std::size_t t = 0; t < 4; ++t)
        ASSERT_TRUE(gen.offer(t, 10_us).isOk());
    h.clock.advanceTo(20_us);
    EXPECT_EQ(gen.pump(20_us), 4u);
    // Deadlines have not expired yet; force the flush.
    h.mgr.scorer()->flushAll(1_ms);

    serve::ServeSummary s = gen.summary(1_ms);
    EXPECT_EQ(s.admits, 4u);
    EXPECT_EQ(s.dispatched, 4u);
    EXPECT_EQ(s.completions, 4u);
    EXPECT_EQ(s.failures, 0u);
    EXPECT_EQ(s.queued_residual, 0u);
    // Latency is arrival-to-scored: at least the queue wait to 20us.
    EXPECT_GE(s.p50_us, 10.0);
}

TEST(TrafficGeneratorTest, DrrSharesDispatchFairlyUnderSkew)
{
    serve::ServeConfig cfg;
    cfg.tenants = 2;
    cfg.bucket_rate = 1e9;
    cfg.bucket_burst = 1e9;
    cfg.queue_capacity = 1000;
    cfg.drr_quantum = 2;
    // Huge ScoreServer appetite so its own backpressure never hides
    // the DRR behaviour under test.
    registry::ScoringConfig scfg;
    scfg.queue_capacity = 4096;
    scfg.max_batch = 4096;
    Harness big(2, 0, scfg);
    serve::TrafficGenerator gen(big.mgr, big.clock, cfg, kSys,
                                big.shards);

    // Tenant 0 is hot (100 queued), tenant 1 light (10 queued).
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(gen.offer(0, 0).isOk());
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(gen.offer(1, 0).isOk());

    // Three rounds of quantum 2: each tenant may dispatch at most 6 —
    // the hot tenant cannot convert its backlog into extra service.
    std::size_t total = 0;
    for (int round = 0; round < 3; ++round)
        total += gen.pump(static_cast<Nanos>(round) * 10_us);
    EXPECT_EQ(total, 12u);
    EXPECT_EQ(gen.tenantStates()[0].dispatched, 6u);
    EXPECT_EQ(gen.tenantStates()[1].dispatched, 6u);
    EXPECT_EQ(gen.tenantStates()[0].queue.size(), 94u);
    EXPECT_EQ(gen.tenantStates()[1].queue.size(), 4u);
}

TEST(TrafficGeneratorTest, OpenLoopRunIsSeedDeterministic)
{
    serve::ServeConfig cfg;
    cfg.tenants = 8;
    cfg.rate_rps = 20000.0;
    cfg.bucket_rate = 15000.0;
    cfg.bucket_burst = 4.0;
    cfg.queue_capacity = 16;
    cfg.seed = 1234;

    auto once = [&cfg]() {
        Harness h(2, 500_ns);
        serve::TrafficGenerator gen(h.mgr, h.clock, cfg, kSys, h.shards);
        gen.run(20_ms);
        return gen.summary(20_ms);
    };
    serve::ServeSummary a = once();
    serve::ServeSummary b = once();
    EXPECT_GT(a.arrivals, 0u);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.admits, b.admits);
    EXPECT_EQ(a.bucket_rejects, b.bucket_rejects);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
    // Conservation: every arrival is accounted for exactly once.
    EXPECT_EQ(a.arrivals,
              a.admits + a.bucket_rejects +
                  (cfg.shed_oldest ? 0 : a.queue_sheds));
    EXPECT_EQ(a.admits, a.completions + a.failures + a.queue_sheds +
                            a.queued_residual);
}

TEST(TrafficGeneratorTest, TraceDrivenRunFollowsSchedule)
{
    std::string path = tempTrace("run", "0 0\n"
                                        "100 1\n"
                                        "200 0\n"
                                        "300 1\n"
                                        "400 0\n");
    Harness h;
    serve::ServeConfig cfg;
    cfg.tenants = 2;
    cfg.bucket_rate = 1e6;
    cfg.bucket_burst = 8.0;
    cfg.trace_path = path;
    serve::TrafficGenerator gen(h.mgr, h.clock, cfg, kSys, h.shards);
    gen.run(1_ms);

    serve::ServeSummary s = gen.summary(1_ms);
    EXPECT_EQ(s.arrivals, 5u);
    EXPECT_EQ(s.admits, 5u);
    EXPECT_EQ(s.completions, 5u);
    EXPECT_EQ(gen.tenantStates()[0].arrivals, 3u);
    EXPECT_EQ(gen.tenantStates()[1].arrivals, 2u);
}

// ---- teardown ------------------------------------------------------

TEST(TrafficGeneratorTest, RegistryTeardownFailsInFlightTenants)
{
    Harness h;
    serve::ServeConfig cfg;
    cfg.tenants = 2; // tenant 0 -> shard0, tenant 1 -> shard1
    cfg.bucket_rate = 1e9;
    cfg.bucket_burst = 1e9;
    serve::TrafficGenerator gen(h.mgr, h.clock, cfg, kSys, h.shards);

    ASSERT_TRUE(gen.offer(0, 0).isOk());
    ASSERT_TRUE(gen.offer(1, 0).isOk());
    EXPECT_EQ(gen.pump(10_us), 2u);

    // Tear shard0 down with tenant 0's request queued inside the
    // ScoreServer: its callback must observe the failure...
    ASSERT_TRUE(h.mgr.destroyRegistry(h.shards[0], kSys).isOk());
    EXPECT_EQ(gen.tenantStates()[0].failures, 1u);
    EXPECT_EQ(gen.tenantStates()[0].completions, 0u);

    // ...while tenant 1 still completes, and post-teardown dispatch
    // for tenant 0 is counted as lost rather than crashing.
    ASSERT_TRUE(gen.offer(0, 20_us).isOk());
    gen.pump(30_us);
    h.mgr.scorer()->flushAll(1_ms);
    EXPECT_EQ(gen.tenantStates()[0].failures, 2u);
    EXPECT_EQ(gen.tenantStates()[1].completions, 1u);
}

TEST(TrafficGeneratorTest, DestructionCompletesInFlightCallbacks)
{
    Harness h;
    {
        serve::ServeConfig cfg;
        cfg.tenants = 4;
        cfg.bucket_rate = 1e9;
        cfg.bucket_burst = 1e9;
        serve::TrafficGenerator gen(h.mgr, h.clock, cfg, kSys,
                                    h.shards);
        for (std::size_t t = 0; t < 4; ++t)
            ASSERT_TRUE(gen.offer(t, 0).isOk());
        // Dispatch below max_batch and before any deadline poll: the
        // requests sit inside the ScoreServer with callbacks that
        // capture the generator.
        EXPECT_EQ(gen.pump(10_us), 4u);
        EXPECT_GT(h.mgr.scorer()->pending(), 0u);
        // The destructor must flush them while the generator is still
        // alive — pre-fix the ScoreServer's own destructor fired the
        // callbacks into the freed generator (TSan: heap-use-after-
        // free under RegistryManager teardown).
        EXPECT_EQ(gen.tenantStates()[0].completions, 0u);
    }
    EXPECT_EQ(h.mgr.scorer()->pending(), 0u);
}

// ---- threading (the sanitizer suite drives this under TSan) --------

TEST(TrafficGeneratorTest, ConcurrentOfferAndPumpAreSafe)
{
    registry::ScoringConfig scfg;
    scfg.queue_capacity = 1024;
    scfg.max_batch = 64;
    Harness h(4, 0, scfg);
    serve::ServeConfig cfg;
    cfg.tenants = 16;
    cfg.bucket_rate = 1e9;
    cfg.bucket_burst = 1e9;
    cfg.queue_capacity = 256;
    serve::TrafficGenerator gen(h.mgr, h.clock, cfg, kSys, h.shards);

    constexpr int kPerThread = 500;
    std::atomic<bool> go{false};
    std::vector<std::thread> offerers;
    for (int w = 0; w < 3; ++w) {
        offerers.emplace_back([&gen, &go, w] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < kPerThread; ++i)
                gen.offer((static_cast<std::size_t>(w) * kPerThread + i) %
                              16,
                          static_cast<Nanos>(i) * 1_us);
        });
    }
    std::thread pumper([&gen, &go] {
        while (!go.load())
            std::this_thread::yield();
        for (int i = 0; i < 200; ++i)
            gen.pump(static_cast<Nanos>(i) * 10_us);
    });
    go.store(true);
    for (auto &th : offerers)
        th.join();
    pumper.join();

    // Quiesce single-threaded, then check conservation.
    for (int i = 0; i < 64; ++i)
        gen.pump(10_ms + static_cast<Nanos>(i) * 100_us);
    h.mgr.scorer()->flushAll(1_s);
    serve::ServeSummary s = gen.summary(1_s);
    EXPECT_EQ(s.arrivals, 3u * kPerThread);
    EXPECT_EQ(s.arrivals, s.admits + s.bucket_rejects);
    EXPECT_EQ(s.admits, s.completions + s.failures + s.queue_sheds +
                            s.queued_residual);
    EXPECT_EQ(s.queued_residual, 0u);
}

} // namespace
