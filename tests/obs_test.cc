// Tests for the observability layer: tracer ordering and wrap-around,
// histogram bucket math, exporter golden output, the zero-allocation
// contract of the disabled hot path, and end-to-end kernel/daemon span
// correlation through a booted Lake.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/lake.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

using namespace lake;

// ---------------------------------------------------------------------
// Global allocation counter for the zero-alloc test. Counting is off
// by default, so every other test in this binary is unaffected.
// ---------------------------------------------------------------------

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_allocs{0};

} // namespace

// noinline keeps GCC from pairing an inlined free() with the new
// expression at call sites and warning about mismatched allocators.
__attribute__((noinline)) void *
operator new(std::size_t n)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

__attribute__((noinline)) void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

__attribute__((noinline)) void
operator delete(void *p) noexcept
{
    std::free(p);
}

__attribute__((noinline)) void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

__attribute__((noinline)) void
operator delete[](void *p) noexcept
{
    std::free(p);
}

__attribute__((noinline)) void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

/** Resets the process-wide tracer and metrics around each test. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::Tracer::global().setEnabled(false);
        obs::Tracer::global().clear();
        obs::Metrics::global().setEnabled(false);
        obs::Metrics::global().reset();
    }

    void
    TearDown() override
    {
        obs::Tracer::global().setEnabled(false);
        obs::Tracer::global().clear();
        obs::Tracer::global().unbindClock();
        obs::Metrics::global().setEnabled(false);
        obs::Metrics::global().reset();
    }
};

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST_F(ObsTest, DisabledRecorderRetainsNothing)
{
    auto &tr = obs::Tracer::global();
    tr.span(obs::Side::Kernel, "t", "off", 10, 5);
    tr.instant(obs::Side::Kernel, "t", "off", 10);
    EXPECT_TRUE(tr.snapshot().empty());
    EXPECT_EQ(tr.dropped(), 0u);
}

TEST_F(ObsTest, SnapshotMergesThreadsInProgramOrder)
{
    auto &tr = obs::Tracer::global();
    tr.setEnabled(true);

    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 500;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&tr, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                tr.instant(obs::Side::Runtime, "test", "tick", i, obs::kNoId,
                           "thread", static_cast<std::uint64_t>(t), "i", i);
        });
    for (auto &th : ts)
        th.join();

    std::vector<obs::TraceEvent> ev = tr.snapshot();
    ASSERT_EQ(ev.size(), kThreads * kPerThread);
    EXPECT_EQ(tr.dropped(), 0u);

    // Global program order is strictly increasing after the merge...
    for (std::size_t i = 1; i < ev.size(); ++i)
        EXPECT_LT(ev[i - 1].order, ev[i].order);

    // ...and each thread's events appear in the order it recorded them.
    std::uint64_t next_i[kThreads] = {};
    std::set<std::uint32_t> tids;
    for (const obs::TraceEvent &e : ev) {
        auto t = static_cast<std::size_t>(e.arg0);
        ASSERT_LT(t, static_cast<std::size_t>(kThreads));
        EXPECT_EQ(e.arg1, next_i[t]++);
        tids.insert(e.tid);
    }
    // Four recording threads means four distinct ring lanes.
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(ObsTest, RingWrapKeepsNewestEventsAndCountsDropped)
{
    auto &tr = obs::Tracer::global();
    tr.setEnabled(true);

    const std::uint64_t total = obs::Tracer::kRingCapacity + 100;
    for (std::uint64_t i = 0; i < total; ++i)
        tr.instant(obs::Side::Kernel, "test", "tick", i, obs::kNoId, "i", i);

    std::vector<obs::TraceEvent> ev = tr.snapshot();
    ASSERT_EQ(ev.size(), obs::Tracer::kRingCapacity);
    EXPECT_EQ(tr.dropped(), 100u);
    // The oldest 100 events were overwritten; the newest survive in
    // order.
    EXPECT_EQ(ev.front().arg0, 100u);
    EXPECT_EQ(ev.back().arg0, total - 1);

    tr.clear();
    EXPECT_TRUE(tr.snapshot().empty());
    EXPECT_EQ(tr.dropped(), 0u);
}

TEST_F(ObsTest, ClockBindingTimestampsWithoutAdvancing)
{
    auto &tr = obs::Tracer::global();
    Clock clock;
    clock.advance(1234);
    EXPECT_EQ(tr.now(), 0u); // unbound: falls back to 0
    tr.bindClock(&clock);
    EXPECT_EQ(tr.now(), 1234u);
    EXPECT_EQ(clock.now(), 1234u); // observing costs no virtual time
    tr.unbindClock();
    EXPECT_EQ(tr.now(), 0u);
}

// ---------------------------------------------------------------------
// Zero-allocation contract of the disabled hot path
// ---------------------------------------------------------------------

TEST_F(ObsTest, DisabledHotPathDoesNotAllocate)
{
    auto &tr = obs::Tracer::global();
    auto &m = obs::Metrics::global();
    ASSERT_FALSE(tr.enabled());
    ASSERT_FALSE(m.enabled());

    g_allocs.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < 10000; ++i) {
        tr.span(obs::Side::Kernel, "hot", "rpc", i, 7, i, "bytes", 64);
        tr.instant(obs::Side::Daemon, "hot", "doorbell", i);
        // The instrumented-site idiom: one relaxed load, then nothing.
        if (m.enabled())
            m.shm_allocs.add();
    }
    g_count_allocs.store(false, std::memory_order_relaxed);
    EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u);
}

// ---------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------

TEST_F(ObsTest, HistogramBucketBoundaries)
{
    // Bucket 0 holds only zero; bucket i >= 1 holds [2^(i-1), 2^i).
    EXPECT_EQ(obs::Histogram::bucketOf(0), 0);
    EXPECT_EQ(obs::Histogram::bucketOf(1), 1);
    EXPECT_EQ(obs::Histogram::bucketOf(2), 2);
    EXPECT_EQ(obs::Histogram::bucketOf(3), 2);
    EXPECT_EQ(obs::Histogram::bucketOf(4), 3);
    for (int i = 1; i < 63; ++i) {
        std::uint64_t lo = 1ull << (i - 1);
        EXPECT_EQ(obs::Histogram::bucketOf(lo), i) << "lo of bucket " << i;
        EXPECT_EQ(obs::Histogram::bucketOf(2 * lo - 1), i)
            << "hi of bucket " << i;
        EXPECT_EQ(obs::Histogram::bucketLo(i), lo);
    }
    // The top bucket absorbs everything at and above 2^62.
    EXPECT_EQ(obs::Histogram::bucketOf(~0ull), 63);
    EXPECT_EQ(obs::Histogram::bucketOf(1ull << 63), 63);

    obs::Histogram h;
    h.record(0);
    h.record(1);
    h.record(1023); // bucket 10: [512, 1024)
    h.record(1024); // bucket 11: [1024, 2048)
    h.record(~0ull);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.max(), ~0ull);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(10), 1u);
    EXPECT_EQ(h.bucketCount(11), 1u);
    EXPECT_EQ(h.bucketCount(63), 1u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(10), 0u);
}

TEST_F(ObsTest, ApiHistogramsSpillOversizedIds)
{
    obs::ApiHistograms fam;
    fam.record(3, "cuMemAlloc", 100);
    fam.record(1000, "weird", 5); // out of range: spills to the last slot
    EXPECT_EQ(fam.at(3).count(), 1u);
    EXPECT_STREQ(fam.nameAt(3), "cuMemAlloc");
    EXPECT_EQ(fam.at(obs::ApiHistograms::kMaxApi - 1).count(), 1u);
    EXPECT_STREQ(fam.nameAt(obs::ApiHistograms::kMaxApi - 1), "weird");
}

// ---------------------------------------------------------------------
// Metrics registry facade
// ---------------------------------------------------------------------

TEST_F(ObsTest, NamedCountersAndGauges)
{
    auto &m = obs::Metrics::global();
    EXPECT_EQ(m.findCounter("x.absent"), nullptr);

    m.counter("b.second").add(2);
    m.counter("a.first").add(1);
    m.gauge("g.depth").set(7);

    ASSERT_NE(m.findCounter("a.first"), nullptr);
    EXPECT_EQ(m.findCounter("a.first")->get(), 1u);
    EXPECT_EQ(m.findCounter("b.second")->get(), 2u);
    EXPECT_EQ(m.findGauge("g.depth")->get(), 7u);

    // Names come back sorted for deterministic export.
    std::vector<std::string> names = m.counterNames();
    ASSERT_GE(names.size(), 2u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

    // reset() zeroes values but keeps registrations stable.
    m.reset();
    ASSERT_NE(m.findCounter("a.first"), nullptr);
    EXPECT_EQ(m.findCounter("a.first")->get(), 0u);
    EXPECT_EQ(m.findGauge("g.depth")->get(), 0u);
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

TEST_F(ObsTest, ChromeTraceGolden)
{
    // Hand-built events pin the exporter's byte-exact output.
    std::vector<obs::TraceEvent> ev;
    obs::TraceEvent span{};
    span.name = "cuMemAlloc";
    span.cat = "remote";
    span.arg0_name = "api";
    span.arg0 = 3;
    span.arg1_name = nullptr;
    span.id = 42;
    span.ts = 1500;
    span.dur = 2001;
    span.order = 0;
    span.tid = 0;
    span.side = obs::Side::Kernel;
    span.instant = false;
    ev.push_back(span);

    obs::TraceEvent inst{};
    inst.name = "doorbell";
    inst.cat = "remote";
    inst.id = obs::kNoId;
    inst.ts = 1750;
    inst.dur = 0;
    inst.order = 1;
    inst.tid = 2;
    inst.side = obs::Side::Daemon;
    inst.instant = true;
    ev.push_back(inst);

    const std::string expected =
        "{\"displayTimeUnit\":\"ns\",\"traceEvents\":["
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"kernel (lakeLib)\"}},"
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
        "\"args\":{\"name\":\"daemon (lakeD)\"}},"
        "{\"name\":\"cuMemAlloc\",\"cat\":\"remote\",\"ph\":\"X\","
        "\"dur\":2.001,\"pid\":1,\"tid\":0,\"ts\":1.500,"
        "\"args\":{\"seq\":42,\"api\":3}},"
        "{\"name\":\"doorbell\",\"cat\":\"remote\",\"ph\":\"i\",\"s\":\"t\","
        "\"pid\":2,\"tid\":2,\"ts\":1.750,\"args\":{}}"
        "]}\n";
    EXPECT_EQ(obs::chromeTraceJson(ev), expected);
}

TEST_F(ObsTest, MetricsJsonShape)
{
    auto &m = obs::Metrics::global();
    m.reset();
    m.shm_allocs.add(3);
    m.shm_used_bytes.set(4096);
    m.shm_alloc_bytes.record(1024);
    m.stage(obs::Stage::Rpc).record(3, "cuMemAlloc", 56000);
    m.counter("remote.calls").set(9);

    std::string json = obs::metricsJsonObject(m);
    EXPECT_NE(json.find("\"shm.allocs\":3"), std::string::npos);
    EXPECT_NE(json.find("\"shm.used_bytes\":4096"), std::string::npos);
    EXPECT_NE(json.find("\"remote.calls\":9"), std::string::npos);
    EXPECT_NE(json.find("\"shm.alloc_bytes\":{\"count\":1,\"sum\":1024,"
                        "\"max\":1024,\"buckets\":[{\"lo\":1024,\"n\":1}]}"),
              std::string::npos);
    EXPECT_NE(json.find("\"rpc\":{\"cuMemAlloc\":{\"count\":1,\"sum\":56000,"
                        "\"max\":56000,\"buckets\":[{\"lo\":32768,\"n\":1}]}"),
              std::string::npos);
    // Empty histogram families are omitted entirely.
    EXPECT_EQ(json.find("policy.util_permille"), std::string::npos);
    EXPECT_EQ(json.find("\"send\""), std::string::npos);
}

// ---------------------------------------------------------------------
// End to end through a booted Lake
// ---------------------------------------------------------------------

TEST_F(ObsTest, DefaultBootLeavesObservabilityOff)
{
    core::Lake lake;
    EXPECT_FALSE(obs::Tracer::global().enabled());
    EXPECT_FALSE(obs::Metrics::global().enabled());
    gpu::DevicePtr p = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&p, 256), gpu::CuResult::Success);
    EXPECT_TRUE(obs::Tracer::global().snapshot().empty());
    EXPECT_EQ(obs::Metrics::global().shm_allocs.get(), 0u);
}

TEST_F(ObsTest, KernelAndDaemonSpansShareCommandSeq)
{
    core::LakeConfig cfg;
    cfg.obs.trace = true;
    cfg.obs.metrics = true;
    {
        core::Lake lake(cfg);

        shm::ShmOffset h = lake.arena().alloc(4096);
        ASSERT_NE(h, shm::kNullOffset);
        gpu::DevicePtr p = 0;
        ASSERT_EQ(lake.lib().cuMemAlloc(&p, 4096), gpu::CuResult::Success);
        ASSERT_EQ(lake.lib().cuMemcpyHtoDShm(p, h, 4096),
                  gpu::CuResult::Success);
        ASSERT_EQ(lake.lib().cuCtxSynchronize(), gpu::CuResult::Success);
        lake.arena().free(h);
        lake.publishObs();

        std::vector<obs::TraceEvent> ev = obs::Tracer::global().snapshot();
        ASSERT_FALSE(ev.empty());

        // Every kernel-side RPC span has a daemon-side dispatch span
        // carrying the same command seq.
        std::set<std::uint64_t> kernel_seqs, daemon_seqs;
        bool saw_shm = false, saw_gpu = false;
        for (const obs::TraceEvent &e : ev) {
            if (e.side == obs::Side::Kernel && e.id != obs::kNoId &&
                !e.instant)
                kernel_seqs.insert(e.id);
            if (e.side == obs::Side::Daemon && e.id != obs::kNoId &&
                !e.instant)
                daemon_seqs.insert(e.id);
            if (e.side == obs::Side::Runtime &&
                std::string(e.name) == "shm.alloc")
                saw_shm = true;
            if (e.side == obs::Side::Gpu)
                saw_gpu = true;
        }
        ASSERT_FALSE(kernel_seqs.empty());
        for (std::uint64_t seq : kernel_seqs)
            EXPECT_TRUE(daemon_seqs.count(seq)) << "unmatched seq " << seq;
        EXPECT_TRUE(saw_shm);
        EXPECT_TRUE(saw_gpu);

        // Metrics saw both sides too.
        auto &m = obs::Metrics::global();
        EXPECT_GT(m.shm_allocs.get(), 0u);
        std::uint64_t rpc_samples = 0;
        for (std::uint32_t a = 0; a < obs::ApiHistograms::kMaxApi; ++a)
            rpc_samples += m.stage(obs::Stage::Rpc).at(a).count();
        EXPECT_GT(rpc_samples, 0u);
        ASSERT_NE(m.findCounter("remote.calls"), nullptr);
        EXPECT_GT(m.findCounter("remote.calls")->get(), 0u);
        ASSERT_NE(m.findCounter("daemon.commands_handled"), nullptr);
        EXPECT_GT(m.findCounter("daemon.commands_handled")->get(), 0u);

        // Observation never advanced virtual time: every event was
        // stamped at or before the clock's final reading (the sync at
        // the end drained all engine work).
        for (const obs::TraceEvent &e : ev)
            EXPECT_LE(e.ts + e.dur, lake.clock().now());
    }
    // ~Lake unbinds the tracer's clock.
    EXPECT_EQ(obs::Tracer::global().now(), 0u);
}

TEST_F(ObsTest, LakeWritesTraceFileOnTeardown)
{
    const std::string path = ::testing::TempDir() + "lake_obs_trace.json";
    std::remove(path.c_str());
    core::LakeConfig cfg;
    cfg.obs.trace = true;
    cfg.obs.trace_path = path;
    {
        core::Lake lake(cfg);
        gpu::DevicePtr p = 0;
        ASSERT_EQ(lake.lib().cuMemAlloc(&p, 128), gpu::CuResult::Success);
    }
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::string body((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(body.find("cuMemAlloc"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
