// Tests for the API remoting system: wire format, lakeLib stubs,
// lakeD dispatch, zero-copy shm paths, deferred async errors, and
// high-level API extension.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "core/lake.h"
#include "remote/wire.h"

namespace lake::remote {
namespace {

TEST(WireTest, ScalarRoundTrip)
{
    Encoder enc;
    enc.u32(0xdeadbeef).u64(0x0123456789abcdefull).f32(3.25f);
    std::vector<std::uint8_t> buf = enc.take();
    ASSERT_EQ(buf.size(), 16u);

    Decoder dec(buf);
    EXPECT_EQ(dec.u32(), 0xdeadbeefu);
    EXPECT_EQ(dec.u64(), 0x0123456789abcdefull);
    EXPECT_FLOAT_EQ(dec.f32(), 3.25f);
    EXPECT_TRUE(dec.ok());
    EXPECT_TRUE(dec.atEnd());
}

TEST(WireTest, BytesAndStrings)
{
    Encoder enc;
    enc.str("cuMemAlloc").bytes("\x01\x02\x03", 3);
    std::vector<std::uint8_t> buf = enc.take();

    Decoder dec(buf);
    EXPECT_EQ(dec.str(), "cuMemAlloc");
    std::size_t n = 0;
    const std::uint8_t *p = dec.bytes(&n);
    ASSERT_EQ(n, 3u);
    EXPECT_EQ(p[2], 3);
}

TEST(WireTest, UnderrunIsSticky)
{
    Encoder enc;
    enc.u32(7);
    std::vector<std::uint8_t> buf = enc.take();
    Decoder dec(buf);
    EXPECT_EQ(dec.u32(), 7u);
    EXPECT_EQ(dec.u64(), 0u); // underrun
    EXPECT_FALSE(dec.ok());
    EXPECT_EQ(dec.u32(), 0u); // stays failed
}

TEST(WireTest, HugeLengthPrefixFailsCleanly)
{
    // Regression: Decoder::need computed pos_ + n, which wraps for a
    // length prefix near UINT64_MAX and let bytes() hand out a bogus
    // pointer. The overflow-safe form must just fail the decode.
    Encoder enc;
    enc.u64(~0ull - 8); // a "length" of ~16 EiB
    std::vector<std::uint8_t> buf = enc.take();

    Decoder dec(buf);
    std::size_t n = 0;
    const std::uint8_t *p = dec.bytes(&n);
    EXPECT_EQ(p, nullptr);
    EXPECT_FALSE(dec.ok());
}

TEST(WireTest, EmptyByteBlockWithNullPointer)
{
    // Regression: bytes(nullptr, 0) computed nullptr arithmetic (UB);
    // an empty block is legal and must round-trip.
    Encoder enc;
    enc.bytes(nullptr, 0).u32(7);
    std::vector<std::uint8_t> buf = enc.take();

    Decoder dec(buf);
    std::size_t n = 99;
    dec.bytes(&n);
    EXPECT_EQ(n, 0u);
    EXPECT_EQ(dec.u32(), 7u);
    EXPECT_TRUE(dec.ok());
}

TEST(WireTest, CommandHead)
{
    Encoder enc = makeCommand(ApiId::CuLaunchKernel, 99);
    std::vector<std::uint8_t> buf = enc.take();
    Decoder dec(buf);
    CommandHead head = readHead(dec);
    EXPECT_EQ(head.id, ApiId::CuLaunchKernel);
    EXPECT_EQ(head.seq, 99u);
}

class RemoteTest : public ::testing::Test
{
  protected:
    core::Lake lake_;
};

TEST_F(RemoteTest, MemAllocThroughDaemon)
{
    gpu::DevicePtr p = 0;
    EXPECT_EQ(lake_.lib().cuMemAlloc(&p, 1024), gpu::CuResult::Success);
    EXPECT_NE(p, 0u);
    EXPECT_EQ(lake_.device().memUsed(), 1024u);
    EXPECT_EQ(lake_.lib().cuMemFree(p), gpu::CuResult::Success);
    EXPECT_EQ(lake_.device().memUsed(), 0u);
    EXPECT_GE(lake_.daemon().commandsHandled(), 2u);
}

TEST_F(RemoteTest, MarshalledMemcpyRoundTrip)
{
    gpu::DevicePtr p = 0;
    ASSERT_EQ(lake_.lib().cuMemAlloc(&p, 512), gpu::CuResult::Success);

    std::vector<std::uint8_t> src(512), dst(512);
    std::iota(src.begin(), src.end(), 0);
    ASSERT_EQ(lake_.lib().cuMemcpyHtoD(p, src.data(), 512),
              gpu::CuResult::Success);
    ASSERT_EQ(lake_.lib().cuMemcpyDtoH(dst.data(), p, 512),
              gpu::CuResult::Success);
    EXPECT_EQ(src, dst);
    EXPECT_EQ(lake_.lib().bytesMarshalled(), 1024u);
}

TEST_F(RemoteTest, ShmZeroCopyPathMovesNoPayloadThroughChannel)
{
    shm::ShmArena &arena = lake_.arena();
    const std::size_t n = 64 << 10;
    shm::ShmOffset h = arena.alloc(n);
    ASSERT_NE(h, shm::kNullOffset);

    gpu::DevicePtr p = 0;
    ASSERT_EQ(lake_.lib().cuMemAlloc(&p, n), gpu::CuResult::Success);

    auto *buf = static_cast<std::uint8_t *>(arena.at(h));
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = static_cast<std::uint8_t>(i * 7);

    std::uint64_t bytes_before = lake_.channel().bytesSent();
    ASSERT_EQ(lake_.lib().cuMemcpyHtoDShm(p, h, n),
              gpu::CuResult::Success);
    std::uint64_t channel_bytes =
        lake_.channel().bytesSent() - bytes_before;
    // Only the command header and offsets cross the channel: §4's
    // zero-copy property.
    EXPECT_LT(channel_bytes, 256u);

    // And the data really landed in device memory.
    const void *dev_mem = lake_.device().resolve(p, n);
    ASSERT_NE(dev_mem, nullptr);
    EXPECT_EQ(std::memcmp(dev_mem, buf, n), 0);

    std::memset(buf, 0, n);
    ASSERT_EQ(lake_.lib().cuMemcpyDtoHShm(h, p, n),
              gpu::CuResult::Success);
    EXPECT_EQ(buf[9], static_cast<std::uint8_t>(9 * 7));
    arena.free(h);
}

TEST_F(RemoteTest, RemotedKernelLaunchComputes)
{
    const std::uint64_t n = 256;
    shm::ShmArena &arena = lake_.arena();
    shm::ShmOffset h = arena.alloc(n * sizeof(float));

    gpu::DevicePtr a = 0, b = 0, c = 0;
    lake_.lib().cuMemAlloc(&a, n * 4);
    lake_.lib().cuMemAlloc(&b, n * 4);
    lake_.lib().cuMemAlloc(&c, n * 4);

    auto *f = static_cast<float *>(arena.at(h));
    for (std::uint64_t i = 0; i < n; ++i)
        f[i] = 1.5f;
    lake_.lib().cuMemcpyHtoDShm(a, h, n * 4);
    for (std::uint64_t i = 0; i < n; ++i)
        f[i] = 2.0f;
    lake_.lib().cuMemcpyHtoDShm(b, h, n * 4);

    gpu::LaunchConfig cfg;
    cfg.kernel = "vec_add";
    cfg.arg(a).arg(b).arg(c).arg(n, nullptr);
    EXPECT_EQ(lake_.lib().cuLaunchKernel(cfg), gpu::CuResult::Success);
    EXPECT_EQ(lake_.lib().cuCtxSynchronize(), gpu::CuResult::Success);

    lake_.lib().cuMemcpyDtoHShm(h, c, n * 4);
    for (std::uint64_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(f[i], 3.5f);
    arena.free(h);
}

TEST_F(RemoteTest, AsyncErrorsSurfaceAtSynchronize)
{
    gpu::LaunchConfig cfg;
    cfg.kernel = "no_such_kernel";
    // One-way launch reports success immediately...
    EXPECT_EQ(lake_.lib().cuLaunchKernel(cfg), gpu::CuResult::Success);
    // ...and the failure arrives at the synchronizing call.
    EXPECT_EQ(lake_.lib().cuCtxSynchronize(), gpu::CuResult::NotFound);
    // The error is consumed: the next sync is clean.
    EXPECT_EQ(lake_.lib().cuCtxSynchronize(), gpu::CuResult::Success);
}

TEST_F(RemoteTest, NvmlRemoted)
{
    RemoteUtilization util;
    ASSERT_EQ(lake_.lib().nvmlGetUtilization(&util),
              gpu::CuResult::Success);
    EXPECT_GE(util.gpu, 0.0f);
    EXPECT_LE(util.gpu, 100.0f);
}

TEST_F(RemoteTest, HighLevelCallDispatchesByName)
{
    lake_.daemon().registerHighLevel(
        "test.echo_sum", [](Decoder &dec, Encoder &resp) {
            std::uint64_t a = dec.u64();
            std::uint64_t b = dec.u64();
            resp.u64(a + b);
        });

    Encoder args;
    args.u64(40).u64(2);
    auto result = lake_.lib().highLevelCall("test.echo_sum", args.take());
    ASSERT_TRUE(result.isOk());
    Decoder dec(result.value());
    EXPECT_EQ(dec.u64(), 42u);
}

TEST_F(RemoteTest, UnknownHighLevelCallFails)
{
    auto result = lake_.lib().highLevelCall("test.missing", {});
    EXPECT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), Code::NotFound);
}

TEST_F(RemoteTest, HighLevelCostCharged)
{
    lake_.daemon().registerHighLevel(
        "test.slow", [](Decoder &, Encoder &) {}, 5_ms);
    Nanos t0 = lake_.clock().now();
    ASSERT_TRUE(lake_.lib().highLevelCall("test.slow", {}).isOk());
    EXPECT_GE(lake_.clock().now() - t0, 5_ms);
}

TEST_F(RemoteTest, RpcChargesChannelTime)
{
    Nanos t0 = lake_.clock().now();
    gpu::DevicePtr p = 0;
    lake_.lib().cuMemAlloc(&p, 64);
    Nanos elapsed = lake_.clock().now() - t0;
    // A small-command RPC costs about one Fig. 6 round trip.
    EXPECT_GE(elapsed, 20_us);
    EXPECT_LE(elapsed, 60_us);
}

TEST_F(RemoteTest, OneWayPostsAreCheap)
{
    gpu::DevicePtr p = 0;
    lake_.lib().cuMemAlloc(&p, 4096);
    shm::ShmOffset h = lake_.arena().alloc(4096);

    Nanos t0 = lake_.clock().now();
    lake_.lib().cuMemcpyHtoDShmAsync(p, h, 4096, 1);
    Nanos elapsed = lake_.clock().now() - t0;
    // Posting pays roughly a one-way transfer, not a round trip.
    EXPECT_LT(elapsed, 20_us);
    lake_.arena().free(h);
}

} // namespace
} // namespace lake::remote
