// Tests for the hardened remoting path (ISSUE 2): deterministic fault
// injection, Status-based error propagation in lakeLib, retry with
// backoff, degraded-mode fallback to CPU-only policies, the malformed-
// command corpus lakeD must reject, and the Fig. 7-style end-to-end run
// under seeded channel faults.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "base/rng.h"
#include "channel/fault.h"
#include "core/lake.h"
#include "ml/backends.h"
#include "remote/streampool.h"
#include "remote/wire.h"
#include "storage/e2e.h"
#include "storage/linnos.h"

namespace lake {
namespace {

using channel::FaultInjector;
using channel::FaultSpec;
using gpu::CuResult;
using remote::ApiId;
using remote::Encoder;
using remote::makeCommand;
using Dir = channel::Channel::Dir;

// ---------------------------------------------------------------------
// FaultInjector unit behaviour
// ---------------------------------------------------------------------

TEST(FaultInjectorTest, SameSeedReplaysIdentically)
{
    FaultSpec spec;
    spec.seed = 1234;
    spec.drop = 0.2;
    spec.truncate = 0.2;
    spec.bitflip = 0.2;
    spec.duplicate = 0.2;
    spec.delay = 0.1;

    FaultInjector a(spec), b(spec);
    Rng payload_rng(7);
    for (int i = 0; i < 500; ++i) {
        std::vector<std::uint8_t> pa(16 + i % 48);
        for (auto &byte : pa)
            byte = static_cast<std::uint8_t>(payload_rng.uniformInt(0, 255));
        std::vector<std::uint8_t> pb = pa;

        FaultInjector::Outcome oa = a.apply(i % 2 == 0, pa);
        FaultInjector::Outcome ob = b.apply(i % 2 == 0, pb);
        ASSERT_EQ(oa.drop, ob.drop);
        ASSERT_EQ(oa.duplicate, ob.duplicate);
        ASSERT_EQ(oa.extra_delay, ob.extra_delay);
        ASSERT_EQ(pa, pb);
    }
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_GT(a.injected(), 0u);
    EXPECT_EQ(a.seen(), 500u);
}

TEST(FaultInjectorTest, DisarmedInjectorIsInvisible)
{
    FaultSpec spec;
    spec.drop = 1.0;
    FaultInjector inj(spec);
    inj.disarm();

    std::vector<std::uint8_t> payload{1, 2, 3};
    std::vector<std::uint8_t> orig = payload;
    FaultInjector::Outcome o = inj.apply(true, payload);
    EXPECT_FALSE(o.drop);
    EXPECT_FALSE(o.duplicate);
    EXPECT_EQ(o.extra_delay, 0);
    EXPECT_EQ(payload, orig);
    EXPECT_EQ(inj.seen(), 0u);
}

TEST(FaultInjectorTest, DirectionGatesApply)
{
    FaultSpec spec;
    spec.drop = 1.0;
    spec.kernel_to_user = false; // commands pass untouched
    spec.user_to_kernel = true;  // responses always dropped
    FaultInjector inj(spec);

    std::vector<std::uint8_t> payload{1};
    EXPECT_FALSE(inj.apply(true, payload).drop);
    EXPECT_TRUE(inj.apply(false, payload).drop);
}

// ---------------------------------------------------------------------
// lakeLib Status propagation under injected faults
// ---------------------------------------------------------------------

TEST(LakeLibFaultTest, DroppedMessagesBecomeTimeoutNotPanic)
{
    core::Lake lake;
    FaultSpec spec;
    spec.drop = 1.0;
    lake.channel().installFaults(spec);

    Nanos t0 = lake.clock().now();
    gpu::DevicePtr p = 0;
    EXPECT_EQ(lake.lib().cuMemAlloc(&p, 4096), CuResult::Unavailable);
    // The caller blocked out its virtual-time deadline.
    EXPECT_GE(lake.clock().now() - t0,
              lake.lib().responseTimeout(16));
    EXPECT_GE(lake.lib().faultsSeen(), 1u);
    EXPECT_GT(lake.channel().faults()->dropped(), 0u);
}

TEST(LakeLibFaultTest, DuplicatedResponsesAreDrained)
{
    core::Lake lake;
    gpu::DevicePtr p = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&p, 4096), CuResult::Success);

    // Duplicate every *response*; commands travel clean so the daemon
    // never executes anything twice.
    FaultSpec spec;
    spec.duplicate = 1.0;
    spec.kernel_to_user = false;
    lake.channel().installFaults(spec);

    std::vector<std::uint8_t> buf(512, 0x5a);
    EXPECT_EQ(lake.lib().cuMemcpyHtoD(p, buf.data(), buf.size()),
              CuResult::Success);
    // The stale duplicate left in the queue must not satisfy (or
    // confuse) the next call.
    EXPECT_EQ(lake.lib().cuMemcpyHtoD(p, buf.data(), buf.size()),
              CuResult::Success);
    EXPECT_GT(lake.channel().faults()->duplicated(), 0u);
}

TEST(LakeLibFaultTest, TruncatedResponsesSurfaceAsErrors)
{
    core::Lake lake;
    gpu::DevicePtr p = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&p, 4096), CuResult::Success);

    FaultSpec spec;
    spec.truncate = 1.0;
    spec.kernel_to_user = false; // only responses are damaged
    lake.channel().installFaults(spec);

    std::vector<std::uint8_t> buf(64);
    CuResult r = lake.lib().cuMemcpyDtoH(buf.data(), p, buf.size());
    EXPECT_NE(r, CuResult::Success);
    EXPECT_GT(lake.channel().faults()->truncated(), 0u);
    EXPECT_GE(lake.lib().faultsSeen(), 1u);
}

TEST(LakeLibFaultTest, BitFlippedTrafficNeverPanics)
{
    core::Lake lake;
    gpu::DevicePtr p = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&p, 4096), CuResult::Success);

    FaultSpec spec;
    spec.bitflip = 1.0;
    lake.channel().installFaults(spec);

    // Every command and response has one random bit flipped; whatever
    // the decoders make of it, both sides must survive and the caller
    // must get *a* CuResult.
    for (int i = 0; i < 20; ++i) {
        remote::RemoteUtilization util;
        (void)lake.lib().nvmlGetUtilization(&util);
    }
    EXPECT_GT(lake.channel().faults()->flipped(), 0u);
}

TEST(LakeLibFaultTest, RetryRecoversFromTransientDrops)
{
    core::LakeConfig config;
    config.retry.max_attempts = 4;
    core::Lake lake(config);
    gpu::DevicePtr p = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&p, 4096), CuResult::Success);

    FaultSpec spec;
    spec.seed = 99;
    spec.drop = 0.5;
    lake.channel().installFaults(spec);

    std::vector<std::uint8_t> buf(128, 0x11);
    int ok = 0;
    for (int i = 0; i < 20; ++i)
        ok += lake.lib().cuMemcpyHtoD(p, buf.data(), buf.size()) ==
                      CuResult::Success
                  ? 1
                  : 0;
    // With 4 attempts against 50% drop, most calls pull through — and
    // only via actual retries.
    EXPECT_GT(ok, 10);
    EXPECT_GT(lake.lib().retries(), 0u);
    EXPECT_GT(lake.lib().faultsSeen(), 0u);
}

TEST(LakeLibFaultTest, NonIdempotentCallsDoNotRetry)
{
    core::LakeConfig config;
    config.retry.max_attempts = 5;
    core::Lake lake(config);

    FaultSpec spec;
    spec.drop = 1.0;
    lake.channel().installFaults(spec);

    std::uint64_t retries_before = lake.lib().retries();
    gpu::DevicePtr p = 0;
    // cuMemAlloc must fail fast: a lost response would leak the
    // daemon-side block on every extra attempt.
    EXPECT_EQ(lake.lib().cuMemAlloc(&p, 64), CuResult::Unavailable);
    EXPECT_EQ(lake.lib().retries(), retries_before);
}

// ---------------------------------------------------------------------
// Degraded mode: repeated failures flip policies to CPU-only
// ---------------------------------------------------------------------

TEST(DegradedModeTest, ConsecutiveFailuresLatchDegraded)
{
    core::Lake lake;
    ASSERT_FALSE(lake.degraded());

    FaultSpec spec;
    spec.drop = 1.0;
    lake.channel().installFaults(spec);

    gpu::DevicePtr p = 0;
    for (std::size_t i = 0; i < lake.config().degrade_threshold; ++i)
        EXPECT_EQ(lake.lib().cuMemAlloc(&p, 64), CuResult::Unavailable);
    EXPECT_TRUE(lake.degraded());
    EXPECT_TRUE(lake.remoteStats().degraded);

    lake.resetDegraded();
    EXPECT_FALSE(lake.degraded());
}

TEST(DegradedModeTest, SuccessResetsTheFailureStreak)
{
    core::Lake lake;
    FaultSpec spec;
    spec.drop = 1.0;
    FaultInjector &inj = lake.channel().installFaults(spec);

    gpu::DevicePtr p = 0;
    EXPECT_EQ(lake.lib().cuMemAlloc(&p, 64), CuResult::Unavailable);
    EXPECT_EQ(lake.lib().cuMemAlloc(&p, 64), CuResult::Unavailable);

    inj.disarm();
    EXPECT_EQ(lake.lib().cuMemAlloc(&p, 64), CuResult::Success);

    inj.arm();
    EXPECT_EQ(lake.lib().cuMemAlloc(&p, 64), CuResult::Unavailable);
    EXPECT_EQ(lake.lib().cuMemAlloc(&p, 64), CuResult::Unavailable);
    // Two failures, success, two failures: never three in a row.
    EXPECT_FALSE(lake.degraded());
}

TEST(DegradedModeTest, FallbackPolicyForcesCpuWhileDegraded)
{
    core::Lake lake;
    std::unique_ptr<policy::ExecPolicy> guarded = lake.degradationGuard(
        std::make_unique<policy::BatchThresholdPolicy>(1));

    policy::PolicyInput in;
    in.batch_size = 64; // far past the threshold: healthy answer is GPU
    EXPECT_EQ(guarded->decide(in), policy::Engine::Gpu);
    EXPECT_EQ(lake.remoteStats().fallbacks, 0u);

    FaultSpec spec;
    spec.drop = 1.0;
    lake.channel().installFaults(spec);
    gpu::DevicePtr p = 0;
    for (std::size_t i = 0; i < lake.config().degrade_threshold; ++i)
        (void)lake.lib().cuMemAlloc(&p, 64);
    ASSERT_TRUE(lake.degraded());

    EXPECT_EQ(guarded->decide(in), policy::Engine::Cpu);
    EXPECT_EQ(guarded->decide(in), policy::Engine::Cpu);
    EXPECT_EQ(lake.remoteStats().fallbacks, 2u);
}

TEST(DegradedModeTest, NvmlProbeReturnsLastReadingOnFailure)
{
    core::Lake lake;
    policy::UtilProbe probe = lake.nvmlProbe();
    double healthy = probe(lake.clock().now());
    EXPECT_GE(healthy, 0.0);
    EXPECT_LE(healthy, 100.0);

    FaultSpec spec;
    spec.drop = 1.0;
    lake.channel().installFaults(spec);
    // The probe must not assert; it repeats the last good reading.
    EXPECT_EQ(probe(lake.clock().now()), healthy);
}

// ---------------------------------------------------------------------
// Streaming DMA pool under channel faults (DESIGN.md §10)
// ---------------------------------------------------------------------

TEST(StreamPoolFaultTest, FaultedSyncReleasesCreditsAndLatchesDegraded)
{
    core::Lake lake;
    remote::StreamingConfig sc;
    sc.enabled = true;
    sc.streams = 2;
    sc.pool_buffers = 2;
    sc.class_bytes = 4096;
    sc.size_classes = 1;
    remote::StreamOrchestrator orch(lake.lib(), lake.clock(), sc);

    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 4096), CuResult::Success);

    // Stage every credit as in-flight DtoH, then break the transport:
    // responses to the synchronizing calls are dropped.
    std::vector<remote::StreamOrchestrator::Buffer *> staged;
    for (std::size_t i = 0; i < orch.totalBuffers(); ++i) {
        remote::StreamOrchestrator::Buffer *b = orch.acquire(4096);
        ASSERT_NE(b, nullptr);
        ASSERT_TRUE(
            orch.stageOut(b, dev, 4096, orch.streamAt(i)).isOk());
        staged.push_back(b);
    }
    ASSERT_EQ(orch.freeBuffers(), 0u);

    FaultSpec spec;
    spec.drop = 1.0;
    spec.kernel_to_user = false; // commands pass; responses vanish
    lake.channel().installFaults(spec);

    // The sync fails, but every buffer bound to the stream comes home:
    // a dropped response must not leak the credit into a pool deadlock.
    EXPECT_NE(orch.syncStream(orch.streamAt(0)), CuResult::Success);
    EXPECT_NE(orch.syncStream(orch.streamAt(1)), CuResult::Success);
    EXPECT_EQ(orch.freeBuffers(), orch.totalBuffers());
    EXPECT_GE(orch.stats().sync_failures, 2u);

    // Acquire still works on the replenished ring (no in-flight work
    // left, so no further transport traffic is needed).
    remote::StreamOrchestrator::Buffer *again = orch.acquire(4096);
    EXPECT_NE(again, nullptr);
    orch.release(again);

    // Enough consecutive failed syncs trip the degraded-mode latch,
    // the signal policies use to fall back to CPU-only inference.
    for (std::size_t i = 0; lake.config().degrade_threshold > i; ++i)
        (void)orch.syncStream(orch.streamAt(0));
    EXPECT_TRUE(lake.degraded());

    lake.channel().faults()->disarm();
}

TEST(StreamPoolFaultTest, DrainUnderFaultsReportsFirstFailure)
{
    core::Lake lake;
    remote::StreamingConfig sc;
    sc.enabled = true;
    sc.streams = 2;
    sc.pool_buffers = 4;
    sc.class_bytes = 4096;
    sc.size_classes = 1;
    remote::StreamOrchestrator orch(lake.lib(), lake.clock(), sc);

    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 4096), CuResult::Success);
    for (std::size_t i = 0; i < 4; ++i) {
        remote::StreamOrchestrator::Buffer *b = orch.acquire(4096);
        ASSERT_NE(b, nullptr);
        ASSERT_TRUE(
            orch.stageOut(b, dev, 4096, orch.streamAt(i)).isOk());
    }

    FaultSpec spec;
    spec.truncate = 1.0;
    spec.kernel_to_user = false;
    lake.channel().installFaults(spec);

    EXPECT_NE(orch.drain(), CuResult::Success);
    EXPECT_EQ(orch.freeBuffers(), orch.totalBuffers());

    lake.channel().faults()->disarm();
}

// ---------------------------------------------------------------------
// tryClassify: remoting failures propagate as Status, not asserts
// ---------------------------------------------------------------------

TEST(TryClassifyTest, MlpSurfacesTransportErrors)
{
    core::Lake lake;
    Rng rng(5);
    ml::Mlp net(ml::MlpConfig::linnos(), rng);
    ml::LakeMlp gpu_mlp(net, lake.lib(), /*sync_copy=*/true, 16);

    ml::Matrix x(4, net.config().input);
    ASSERT_TRUE(gpu_mlp.tryClassify(x).isOk());

    FaultSpec spec;
    spec.drop = 1.0;
    lake.channel().installFaults(spec);
    Result<std::vector<int>> r = gpu_mlp.tryClassify(x);
    EXPECT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), Code::Unavailable);

    lake.channel().faults()->disarm();
    EXPECT_TRUE(gpu_mlp.tryClassify(x).isOk());
}

// ---------------------------------------------------------------------
// Malformed-command corpus: lakeD must reject, never crash
// ---------------------------------------------------------------------

class MalformedCommandTest : public ::testing::Test
{
  protected:
    /** Drains every response the daemon produced for injected garbage. */
    void drainResponses()
    {
        while (lake_.channel().tryRecv(Dir::UserToKernel))
            ;
    }

    /** Feeds one raw buffer to lakeD and discards whatever comes back. */
    void inject(std::vector<std::uint8_t> buf)
    {
        lake_.channel().send(Dir::KernelToUser, std::move(buf));
        lake_.daemon().processPending();
        drainResponses();
    }

    /** One representative well-formed command per ApiId. */
    std::vector<std::vector<std::uint8_t>> corpus()
    {
        std::vector<std::vector<std::uint8_t>> out;
        auto add = [&out](Encoder e) { out.push_back(e.take()); };
        std::uint32_t seq = 1000;

        {
            Encoder e = makeCommand(ApiId::CuMemAlloc, seq++);
            e.u64(4096);
            add(std::move(e));
        }
        {
            Encoder e = makeCommand(ApiId::CuMemFree, seq++);
            e.u64(0x10000);
            add(std::move(e));
        }
        {
            Encoder e = makeCommand(ApiId::CuMemcpyHtoD, seq++);
            e.u64(0x10000).bytes("payload-bytes", 13);
            add(std::move(e));
        }
        {
            Encoder e = makeCommand(ApiId::CuMemcpyDtoH, seq++);
            e.u64(0x10000).u64(64);
            add(std::move(e));
        }
        for (ApiId id : {ApiId::CuMemcpyHtoDShm, ApiId::CuMemcpyDtoHShm,
                         ApiId::CuMemcpyHtoDShmAsync,
                         ApiId::CuMemcpyDtoHShmAsync}) {
            Encoder e = makeCommand(id, seq++);
            e.u64(0x10000).u64(live_off_).u64(64).u32(0);
            add(std::move(e));
        }
        {
            Encoder e = makeCommand(ApiId::CuLaunchKernel, seq++);
            e.str("vec_add");
            e.u32(1).u32(256);
            e.u32(4);
            e.u64(1).u64(2).u64(3).u64(4);
            e.u32(0);
            add(std::move(e));
        }
        {
            Encoder e = makeCommand(ApiId::CuStreamSynchronize, seq++);
            e.u32(0);
            add(std::move(e));
        }
        add(makeCommand(ApiId::CuCtxSynchronize, seq++));
        add(makeCommand(ApiId::NvmlGetUtilization, seq++));
        {
            Encoder e = makeCommand(ApiId::HighLevelCall, seq++);
            e.str("no.such.api");
            e.u64(7);
            add(std::move(e));
        }
        return out;
    }

    /** Confirms lakeD still serves well-formed traffic normally. */
    void expectDaemonStillHealthy()
    {
        // Garbage one-way commands may have parked a deferred error;
        // one synchronize drains it.
        (void)lake_.lib().cuCtxSynchronize();
        EXPECT_EQ(lake_.lib().cuCtxSynchronize(), CuResult::Success);
        gpu::DevicePtr p = 0;
        EXPECT_EQ(lake_.lib().cuMemAlloc(&p, 256), CuResult::Success);
        EXPECT_EQ(lake_.lib().cuMemFree(p), CuResult::Success);
    }

    void SetUp() override
    {
        live_off_ = lake_.arena().alloc(4096);
        ASSERT_NE(live_off_, shm::kNullOffset);
    }

    core::Lake lake_;
    shm::ShmOffset live_off_ = shm::kNullOffset;
};

TEST_F(MalformedCommandTest, TruncationAtEveryByteBoundary)
{
    for (const std::vector<std::uint8_t> &cmd : corpus()) {
        for (std::size_t len = 0; len < cmd.size(); ++len)
            inject(std::vector<std::uint8_t>(cmd.begin(),
                                             cmd.begin() + len));
    }
    EXPECT_GT(lake_.daemon().malformedRejected(), 0u);
    expectDaemonStillHealthy();
}

TEST_F(MalformedCommandTest, SeededBitFlipsNeverPanicTheDaemon)
{
    Rng rng(0x1a4e);
    for (const std::vector<std::uint8_t> &cmd : corpus()) {
        for (int round = 0; round < 64; ++round) {
            std::vector<std::uint8_t> fuzz = cmd;
            int flips = 1 + static_cast<int>(rng.uniformInt(0, 7));
            for (int f = 0; f < flips; ++f) {
                std::size_t bit = static_cast<std::size_t>(
                    rng.uniformInt(0, fuzz.size() * 8 - 1));
                fuzz[bit / 8] ^= static_cast<std::uint8_t>(
                    1u << (bit % 8));
            }
            inject(std::move(fuzz));
        }
    }
    expectDaemonStillHealthy();
}

TEST_F(MalformedCommandTest, HostileLengthsAreRejectedNotAllocated)
{
    // A DtoH length of ~16 EiB must not become a bounce-buffer
    // allocation attempt.
    Encoder dtoh = makeCommand(ApiId::CuMemcpyDtoH, 1);
    dtoh.u64(0x10000).u64(~0ull);
    inject(dtoh.take());

    // Just past the cap is equally rejected.
    Encoder capped = makeCommand(ApiId::CuMemcpyDtoH, 2);
    capped.u64(0x10000).u64(remote::LakeDaemon::kMaxMarshalledCopy + 1);
    inject(capped.take());

    // A launch claiming 4 billion args must not decode 4 billion times.
    Encoder launch = makeCommand(ApiId::CuLaunchKernel, 3);
    launch.str("vec_add").u32(1).u32(256).u32(0xffffffffu);
    inject(launch.take());

    EXPECT_GE(lake_.daemon().malformedRejected(), 3u);
    expectDaemonStillHealthy();
}

TEST_F(MalformedCommandTest, ShmRangesOutsideLiveAllocationsRejected)
{
    std::uint64_t before = lake_.daemon().malformedRejected();

    // Offset far beyond the region.
    Encoder past = makeCommand(ApiId::CuMemcpyHtoDShm, 1);
    past.u64(0x10000).u64(lake_.arena().capacity() + 4096).u64(64).u32(0);
    inject(past.take());

    // Offset inside the region but in free (never-allocated) space.
    Encoder freespace = makeCommand(ApiId::CuMemcpyDtoHShm, 2);
    freespace.u64(0x10000)
        .u64(live_off_ + (1 << 20))
        .u64(64)
        .u32(0);
    inject(freespace.take());

    // Valid offset, but the length runs off the end of the allocation.
    Encoder overrun = makeCommand(ApiId::CuMemcpyHtoDShm, 3);
    overrun.u64(0x10000).u64(live_off_).u64(1 << 20).u32(0);
    inject(overrun.take());

    // Length that wraps offset + n past UINT64_MAX.
    Encoder wrap = makeCommand(ApiId::CuMemcpyDtoHShm, 4);
    wrap.u64(0x10000).u64(live_off_).u64(~0ull - 16).u32(0);
    inject(wrap.take());

    EXPECT_GE(lake_.daemon().malformedRejected() - before, 4u);
    expectDaemonStillHealthy();
}

// ---------------------------------------------------------------------
// Fig. 7-style end-to-end run under seeded channel faults
// ---------------------------------------------------------------------

TEST(E2eFaultTest, GracefulDegradationUnderChannelFaults)
{
    Rng rng(31);
    storage::LinnosDataset data = storage::collectLinnosData(
        storage::TraceSpec::azure().rerated(3.0),
        storage::NvmeSpec::samsung980Pro(), 400_ms, 0.80, 7);
    ml::Mlp net = storage::trainLinnosModel(data, 0, 3, 0.05f, rng);

    storage::E2eConfig cfg;
    cfg.mode = storage::E2eMode::LakeNn;
    cfg.model = &net;
    cfg.duration = 300_ms;
    cfg.threshold_us = data.threshold_us;
    // Send most batches to the GPU so the faulty remoting path is
    // exercised constantly.
    cfg.gpu_batch_threshold = 2;
    cfg.inject_faults = true;
    cfg.faults.seed = 0x1a4e;
    cfg.faults.drop = 0.25;
    cfg.faults.bitflip = 0.05;

    std::vector<storage::TraceSpec> traces = {
        storage::TraceSpec::azure().rerated(3.0),
        storage::TraceSpec::bingI().rerated(3.0),
        storage::TraceSpec::cosmos()};

    // The run must complete — no panic, no LAKE_ASSERT — with callers
    // observing Status errors and inference falling back to the CPU.
    storage::E2eResult r = storage::runE2e(traces, cfg);
    EXPECT_GT(r.reads, 1000u);
    EXPECT_GT(r.inference_batches, 10u);
    EXPECT_GT(r.gpu_batches, 0u);
    EXPECT_GT(r.remote_faults, 0u);
    EXPECT_GT(r.cpu_fallbacks, 0u);
    // With a 25% drop rate three consecutive failures arrive early, so
    // the run ends latched into CPU-only mode.
    EXPECT_TRUE(r.degraded);
}

TEST(E2eFaultTest, FaultFreePathIsUnperturbed)
{
    Rng rng(31);
    storage::LinnosDataset data = storage::collectLinnosData(
        storage::TraceSpec::azure().rerated(3.0),
        storage::NvmeSpec::samsung980Pro(), 300_ms, 0.80, 7);
    ml::Mlp net = storage::trainLinnosModel(data, 0, 2, 0.05f, rng);

    storage::E2eConfig cfg;
    cfg.mode = storage::E2eMode::LakeNn;
    cfg.model = &net;
    cfg.duration = 200_ms;
    cfg.threshold_us = data.threshold_us;
    std::vector<storage::TraceSpec> traces(
        3, storage::TraceSpec::bingI().rerated(2.0));

    // Two clean runs are bit-identical (virtual time is deterministic),
    // and the failure counters stay at zero.
    storage::E2eResult a = storage::runE2e(traces, cfg);
    storage::E2eResult b = storage::runE2e(traces, cfg);
    EXPECT_EQ(a.avg_read_lat_us, b.avg_read_lat_us);
    EXPECT_EQ(a.p99_read_lat_us, b.p99_read_lat_us);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.remote_faults, 0u);
    EXPECT_EQ(a.remote_retries, 0u);
    EXPECT_EQ(a.cpu_fallbacks, 0u);
    EXPECT_FALSE(a.degraded);
}

} // namespace
} // namespace lake
