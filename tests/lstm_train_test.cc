// Tests for the offline LSTM trainer (BPTT): gradient correctness
// against numerical differentiation, learning on memory-dependent
// tasks, and page-warmth accuracy beating the history baseline on the
// patterns that motivate Kleio.

#include <gtest/gtest.h>

#include <cmath>

#include "mem/pagewarmth.h"
#include "ml/lstm_train.h"

namespace lake::ml {
namespace {

LstmConfig
tinyConfig()
{
    LstmConfig cfg;
    cfg.input = 1;
    cfg.hidden = 3;
    cfg.layers = 2;
    cfg.output = 2;
    cfg.seq_len = 4;
    return cfg;
}

double
lossOf(const Lstm &net, const LstmSample &s)
{
    std::vector<float> logits = net.forward(s.seq);
    float mx = *std::max_element(logits.begin(), logits.end());
    double sum = 0.0;
    for (float l : logits)
        sum += std::exp(static_cast<double>(l - mx));
    return -(static_cast<double>(logits[s.label] - mx) - std::log(sum));
}

TEST(LstmTrainTest, GradientMatchesNumericalDifferentiation)
{
    Rng rng(301);
    Lstm base(tinyConfig(), rng);

    LstmSample sample;
    sample.seq = {0.4f, -0.2f, 0.9f, 0.1f};
    sample.label = 1;

    // Analytic gradient via one tiny SGD step: dW ~ (W - W') / lr.
    const float lr = 1e-4f;
    LstmTrainConfig tc;
    tc.epochs = 1;
    tc.batch = 1;
    tc.lr = lr;
    tc.clip = 0.0f;
    tc.lr_decay = 1.0f;
    Lstm stepped = base;
    trainLstm(stepped, {sample}, tc, rng);

    const float eps = 1e-3f;
    auto numeric = [&](auto mutate_plus, auto mutate_minus) {
        Lstm plus = base, minus = base;
        mutate_plus(plus);
        mutate_minus(minus);
        return (lossOf(plus, sample) - lossOf(minus, sample)) /
               (2.0 * eps);
    };

    // Probe weights across both layers, both weight kinds, bias, head.
    struct Probe
    {
        int kind; // 0 = wx, 1 = wh, 2 = bias, 3 = head_w
        std::size_t layer, row, col;
    };
    for (Probe p : {Probe{0, 0, 1, 0}, Probe{0, 1, 5, 2},
                    Probe{1, 0, 2, 1}, Probe{1, 1, 9, 0},
                    Probe{2, 1, 4, 0}, Probe{3, 0, 1, 2}}) {
        double analytic = 0.0, num = 0.0;
        switch (p.kind) {
          case 0:
            analytic = (base.wx()[p.layer].at(p.row, p.col) -
                        stepped.wx()[p.layer].at(p.row, p.col)) /
                       lr;
            num = numeric(
                [&](Lstm &n) {
                    n.mutableWx(p.layer).at(p.row, p.col) += eps;
                },
                [&](Lstm &n) {
                    n.mutableWx(p.layer).at(p.row, p.col) -= eps;
                });
            break;
          case 1:
            analytic = (base.wh()[p.layer].at(p.row, p.col) -
                        stepped.wh()[p.layer].at(p.row, p.col)) /
                       lr;
            num = numeric(
                [&](Lstm &n) {
                    n.mutableWh(p.layer).at(p.row, p.col) += eps;
                },
                [&](Lstm &n) {
                    n.mutableWh(p.layer).at(p.row, p.col) -= eps;
                });
            break;
          case 2:
            analytic = (base.bias()[p.layer][p.row] -
                        stepped.bias()[p.layer][p.row]) /
                       lr;
            num = numeric(
                [&](Lstm &n) { n.mutableBias(p.layer)[p.row] += eps; },
                [&](Lstm &n) { n.mutableBias(p.layer)[p.row] -= eps; });
            break;
          case 3:
            analytic = (base.headW().at(p.row, p.col) -
                        stepped.headW().at(p.row, p.col)) /
                       lr;
            num = numeric(
                [&](Lstm &n) { n.mutableHeadW().at(p.row, p.col) += eps; },
                [&](Lstm &n) {
                    n.mutableHeadW().at(p.row, p.col) -= eps;
                });
            break;
        }
        EXPECT_NEAR(analytic, num,
                    std::max(5e-3, std::abs(num) * 0.05))
            << "probe kind " << p.kind << " layer " << p.layer << " ("
            << p.row << "," << p.col << ")";
    }
}

TEST(LstmTrainTest, LearnsAMemoryTask)
{
    // Label depends on the FIRST timestep only: the cell state must
    // carry it across the whole sequence, which a feed-forward net
    // (or a broken BPTT) cannot do.
    Rng rng(302);
    LstmConfig cfg;
    cfg.input = 1;
    cfg.hidden = 8;
    cfg.layers = 1;
    cfg.output = 2;
    cfg.seq_len = 8;

    auto make = [&](std::size_t n) {
        std::vector<LstmSample> data;
        for (std::size_t i = 0; i < n; ++i) {
            LstmSample s;
            s.label = rng.chance(0.5) ? 1 : 0;
            s.seq.resize(cfg.seq_len);
            s.seq[0] = s.label ? 0.9f : -0.9f;
            for (std::uint32_t t = 1; t < cfg.seq_len; ++t)
                s.seq[t] = static_cast<float>(rng.uniform(-1.0, 1.0));
            data.push_back(std::move(s));
        }
        return data;
    };

    auto train = make(256);
    auto test = make(128);

    Lstm net(cfg, rng);
    double chance = lstmAccuracy(net, test);

    LstmTrainConfig tc;
    tc.epochs = 40;
    tc.batch = 16;
    tc.lr = 0.15f;
    double final_loss = trainLstm(net, train, tc, rng);

    double acc = lstmAccuracy(net, test);
    EXPECT_GT(acc, 0.95) << "chance was " << chance;
    EXPECT_LT(final_loss, 0.3);
}

TEST(LstmTrainTest, TrainedKleioBeatsHistoryBaselineOnPeriodicPages)
{
    // Kleio's motivation: history-based placement mispredicts periodic
    // pages; a trained LSTM learns the phase.
    Rng rng(303);
    const std::size_t kSeq = 16;
    LstmConfig cfg;
    cfg.input = 1;
    cfg.hidden = 16;
    cfg.layers = 2;
    cfg.output = 2;
    cfg.seq_len = kSeq;

    auto toSamples = [&](const std::vector<mem::PageHistory> &pages) {
        std::vector<LstmSample> out;
        for (const auto &p : pages) {
            LstmSample s;
            s.seq.reserve(kSeq);
            for (float c : p.counts)
                s.seq.push_back(c / 40.0f);
            s.label = p.next_count >= mem::kHotThreshold ? 1 : 0;
            out.push_back(std::move(s));
        }
        return out;
    };

    auto train_pages = mem::generatePageHistories(3000, kSeq, rng);
    auto test_pages = mem::generatePageHistories(1500, kSeq, rng);

    Lstm net(cfg, rng);
    LstmTrainConfig tc;
    tc.epochs = 12;
    tc.batch = 32;
    tc.lr = 0.1f;
    trainLstm(net, toSamples(train_pages), tc, rng);

    std::size_t lstm_ok = 0, hist_ok = 0, periodic = 0;
    for (const auto &p : test_pages) {
        if (p.behavior != mem::PageBehavior::Periodic)
            continue;
        ++periodic;
        bool hot = p.next_count >= mem::kHotThreshold;
        std::vector<float> seq;
        for (float c : p.counts)
            seq.push_back(c / 40.0f);
        lstm_ok += (net.classify(seq) == 1) == hot;
        hist_ok += mem::historyPredictsHot(p) == hot;
    }
    ASSERT_GT(periodic, 100u);
    double lstm_acc = static_cast<double>(lstm_ok) / periodic;
    double hist_acc = static_cast<double>(hist_ok) / periodic;
    EXPECT_GT(lstm_acc, hist_acc + 0.05)
        << "lstm " << lstm_acc << " vs history " << hist_acc;
}

} // namespace
} // namespace lake::ml
