// Tests for the ML substrate: matrix ops, MLP forward/backward
// (including a numerical gradient check), LSTM, k-NN, serialization.

#include <gtest/gtest.h>

#include <cmath>

#include "base/thread_pool.h"
#include "ml/compute.h"
#include "ml/knn.h"
#include "ml/lstm.h"
#include "ml/matrix.h"
#include "ml/mlp.h"

namespace lake::ml {
namespace {

TEST(MatrixTest, AffineComputesXWtPlusB)
{
    Matrix x(2, 3);
    float xv[] = {1, 2, 3, 4, 5, 6};
    std::copy(xv, xv + 6, x.data());
    Matrix w(2, 3); // (out=2, in=3)
    float wv[] = {1, 0, 0, 0, 1, 0};
    std::copy(wv, wv + 6, w.data());
    std::vector<float> b = {10, 20};

    Matrix y = Matrix::affine(x, w, b);
    ASSERT_EQ(y.rows(), 2u);
    ASSERT_EQ(y.cols(), 2u);
    EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f); // 1 + 10
    EXPECT_FLOAT_EQ(y.at(0, 1), 22.0f); // 2 + 20
    EXPECT_FLOAT_EQ(y.at(1, 0), 14.0f);
    EXPECT_FLOAT_EQ(y.at(1, 1), 25.0f);
}

TEST(MatrixTest, BackingIsCacheLineAligned)
{
    // The GEMM substrate and the SoA float plane both assume row 0
    // starts on a cache line; odd shapes and moves must not break it.
    for (std::size_t rows : {1u, 3u, 17u}) {
        for (std::size_t cols : {1u, 5u, 31u}) {
            Matrix m(rows, cols);
            EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) %
                          Matrix::kAlign,
                      0u)
                << rows << "x" << cols;
            Matrix moved = std::move(m);
            EXPECT_EQ(reinterpret_cast<std::uintptr_t>(moved.data()) %
                          Matrix::kAlign,
                      0u);
        }
    }
}

TEST(MatrixTest, RandnMomentsRoughlyGaussian)
{
    Rng rng(5);
    Matrix m = Matrix::randn(100, 100, rng, 0.5);
    double sum = 0.0, sq = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i) {
        sum += m.data()[i];
        sq += m.data()[i] * m.data()[i];
    }
    double mean = sum / m.size();
    double var = sq / m.size() - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(std::sqrt(var), 0.5, 0.02);
}

TEST(MlpTest, ConfigsMatchPaperShapes)
{
    MlpConfig linnos = MlpConfig::linnos();
    EXPECT_EQ(linnos.input, 31u);
    ASSERT_EQ(linnos.hidden.size(), 1u);
    EXPECT_EQ(linnos.hidden[0], 256u); // "two layers with 256 and 2"
    EXPECT_EQ(linnos.output, 2u);

    EXPECT_EQ(MlpConfig::linnos(1).hidden.size(), 2u); // NN+1
    EXPECT_EQ(MlpConfig::linnos(2).hidden.size(), 3u); // NN+2
}

TEST(MlpTest, ForwardShapeAndDeterminism)
{
    Rng rng(1);
    Mlp net(MlpConfig::linnos(), rng);
    Matrix x(5, 31);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(i % 7) * 0.1f;
    Matrix y1 = net.forward(x);
    Matrix y2 = net.forward(x);
    ASSERT_EQ(y1.rows(), 5u);
    ASSERT_EQ(y1.cols(), 2u);
    for (std::size_t i = 0; i < y1.size(); ++i)
        EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
}

TEST(MlpTest, GradientMatchesNumericalDifferentiation)
{
    // Small net so finite differences stay accurate.
    MlpConfig cfg;
    cfg.input = 4;
    cfg.hidden = {5};
    cfg.output = 3;
    Rng rng(7);

    Matrix x(3, 4);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    std::vector<int> y = {0, 2, 1};

    auto loss_of = [&](const Mlp &net) {
        Matrix probs = softmax(net.forward(x));
        double loss = 0.0;
        for (std::size_t r = 0; r < 3; ++r)
            loss += -std::log(static_cast<double>(probs.at(r, y[r])));
        return loss / 3.0;
    };

    // Analytic gradient via one SGD step with tiny lr: dW ~ (W - W')/lr.
    const float lr = 1e-4f;
    Mlp base(cfg, rng);
    Mlp stepped = base;
    stepped.trainStep(x, y, lr);

    // Numerical gradient for a handful of probe weights.
    for (auto [layer, row, col] :
         {std::tuple<int, int, int>{0, 0, 0}, {0, 2, 3}, {1, 1, 4},
          {1, 2, 0}}) {
        double analytic =
            (base.weights()[layer].at(row, col) -
             stepped.weights()[layer].at(row, col)) /
            lr;

        const float eps = 1e-3f;
        Mlp plus = base, minus = base;
        plus.editParams([&, layer = layer, row = row, col = col](
                            std::vector<Matrix> &w, auto &) {
            w[layer].at(row, col) += eps;
        });
        minus.editParams([&, layer = layer, row = row, col = col](
                             std::vector<Matrix> &w, auto &) {
            w[layer].at(row, col) -= eps;
        });
        double numeric = (loss_of(plus) - loss_of(minus)) / (2.0 * eps);

        EXPECT_NEAR(analytic, numeric,
                    std::max(2e-2, std::abs(numeric) * 0.05))
            << "layer " << layer << " w(" << row << "," << col << ")";
    }
}

TEST(MlpTest, TrainingLearnsASeparableTask)
{
    // Label = 1 iff sum of inputs exceeds 0; linearly separable so a
    // few epochs must reach high accuracy.
    Rng rng(11);
    MlpConfig cfg;
    cfg.input = 8;
    cfg.hidden = {16};
    cfg.output = 2;
    Mlp net(cfg, rng);

    const std::size_t n = 512;
    Matrix x(n, 8);
    std::vector<int> y(n);
    for (std::size_t r = 0; r < n; ++r) {
        float sum = 0.0f;
        for (int c = 0; c < 8; ++c) {
            x.at(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
            sum += x.at(r, c);
        }
        y[r] = sum > 0.0f ? 1 : 0;
    }

    double first_loss = net.trainStep(x, y, 0.2f);
    for (int epoch = 0; epoch < 400; ++epoch)
        net.trainStep(x, y, 0.2f);
    EXPECT_GT(net.accuracy(x, y), 0.95);
    EXPECT_LT(net.trainStep(x, y, 0.0f), first_loss);
}

TEST(MlpTest, SerializeRoundTrip)
{
    Rng rng(3);
    Mlp net(MlpConfig::linnos(1), rng);
    auto blob = net.serialize();

    auto copy = Mlp::deserialize(blob);
    ASSERT_TRUE(copy.isOk());
    EXPECT_EQ(copy.value().paramCount(), net.paramCount());

    Matrix x(4, 31);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(i) * 0.01f;
    Matrix y1 = net.forward(x);
    Matrix y2 = copy.value().forward(x);
    for (std::size_t i = 0; i < y1.size(); ++i)
        EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
}

TEST(MlpTest, DeserializeRejectsGarbage)
{
    EXPECT_FALSE(Mlp::deserialize({}).isOk());
    EXPECT_FALSE(Mlp::deserialize({1, 2, 3}).isOk());

    Rng rng(4);
    Mlp net(MlpConfig::mllb(), rng);
    auto blob = net.serialize();
    blob.resize(blob.size() / 2); // truncated weights
    EXPECT_FALSE(Mlp::deserialize(blob).isOk());

    auto blob2 = net.serialize();
    blob2.push_back(0); // trailing bytes
    EXPECT_FALSE(Mlp::deserialize(blob2).isOk());
}

TEST(MlpTest, FlopsAndParamsMatchShape)
{
    Rng rng(5);
    Mlp net(MlpConfig::linnos(), rng);
    // 31*256 + 256*2 mults, doubled for adds.
    EXPECT_DOUBLE_EQ(net.flopsPerSample(),
                     2.0 * (31 * 256 + 256 * 2));
    EXPECT_EQ(net.paramCount(),
              static_cast<std::size_t>(31 * 256 + 256 + 256 * 2 + 2));
}

// ---- LSTM -----------------------------------------------------------

TEST(LstmTest, HandComputedSingleStep)
{
    // 1 layer, hidden 1, input 1, seq 1: all weights set by hand.
    LstmConfig cfg;
    cfg.input = 1;
    cfg.hidden = 1;
    cfg.layers = 1;
    cfg.output = 1;
    cfg.seq_len = 1;
    Rng rng(1);
    Lstm net(cfg, rng);

    auto &wx = const_cast<Matrix &>(net.wx()[0]);
    auto &wh = const_cast<Matrix &>(net.wh()[0]);
    auto &b = const_cast<std::vector<float> &>(net.bias()[0]);
    // Gates [i, f, g, o]: make i=sigmoid(1), f=sigmoid(0)=0.5,
    // g=tanh(2), o=sigmoid(0.5) for x=1, h=0.
    wx.at(0, 0) = 1.0f;  // i
    wx.at(1, 0) = 0.0f;  // f
    wx.at(2, 0) = 2.0f;  // g
    wx.at(3, 0) = 0.5f;  // o
    for (int g = 0; g < 4; ++g) {
        wh.at(g, 0) = 0.0f;
        b[g] = 0.0f;
    }
    auto &hw = const_cast<Matrix &>(net.headW());
    hw.at(0, 0) = 1.0f;
    const_cast<std::vector<float> &>(net.headB())[0] = 0.0f;

    double i = 1.0 / (1.0 + std::exp(-1.0));
    double g = std::tanh(2.0);
    double c = 0.5 * 0.0 + i * g;
    double o = 1.0 / (1.0 + std::exp(-0.5));
    double h = o * std::tanh(c);

    std::vector<float> out = net.forward({1.0f});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0], h, 1e-5);
}

TEST(LstmTest, ForgettingGateCarriesState)
{
    // With f=1, i=0: cell state must persist across the sequence.
    LstmConfig cfg;
    cfg.input = 1;
    cfg.hidden = 1;
    cfg.layers = 1;
    cfg.output = 1;
    cfg.seq_len = 5;
    Rng rng(2);
    Lstm net(cfg, rng);

    auto &wx = const_cast<Matrix &>(net.wx()[0]);
    auto &wh = const_cast<Matrix &>(net.wh()[0]);
    auto &b = const_cast<std::vector<float> &>(net.bias()[0]);
    for (int g = 0; g < 4; ++g) {
        wx.at(g, 0) = 0.0f;
        wh.at(g, 0) = 0.0f;
    }
    b[0] = -100.0f; // i ~= 0
    b[1] = 100.0f;  // f ~= 1
    b[2] = 0.0f;
    b[3] = 100.0f;  // o ~= 1
    // Zero state forever: output = tanh(0) = 0 regardless of input.
    const_cast<Matrix &>(net.headW()).at(0, 0) = 1.0f;
    std::vector<float> out = net.forward({5, 5, 5, 5, 5});
    EXPECT_NEAR(out[0], 0.0, 1e-5);
}

TEST(LstmTest, KleioShape)
{
    LstmConfig cfg = LstmConfig::kleio();
    EXPECT_EQ(cfg.layers, 2u); // "a model with two LSTM layers"
    Rng rng(6);
    Lstm net(cfg, rng);
    std::vector<float> seq(cfg.seq_len * cfg.input, 0.3f);
    std::vector<float> logits = net.forward(seq);
    EXPECT_EQ(logits.size(), cfg.output);
    EXPECT_GT(net.flopsPerSample(), 1e6);
}

TEST(LstmTest, SerializeRoundTrip)
{
    LstmConfig cfg;
    cfg.input = 2;
    cfg.hidden = 8;
    cfg.layers = 2;
    cfg.output = 3;
    cfg.seq_len = 4;
    Rng rng(9);
    Lstm net(cfg, rng);

    auto blob = net.serialize();
    auto copy = Lstm::deserialize(blob);
    ASSERT_TRUE(copy.isOk());

    std::vector<float> seq(8, 0.5f);
    auto a = net.forward(seq);
    auto b = copy.value().forward(seq);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_FLOAT_EQ(a[i], b[i]);

    blob[0] ^= 0xff;
    EXPECT_FALSE(Lstm::deserialize(blob).isOk());
}

TEST(LstmTest, BatchMatchesSingles)
{
    LstmConfig cfg;
    cfg.input = 1;
    cfg.hidden = 4;
    cfg.layers = 1;
    cfg.output = 2;
    cfg.seq_len = 3;
    Rng rng(10);
    Lstm net(cfg, rng);

    std::vector<float> batch = {0.1f, 0.2f, 0.3f, 0.9f, 0.8f, 0.7f};
    auto labels = net.classifyBatch(batch, 2);
    EXPECT_EQ(labels[0], net.classify({0.1f, 0.2f, 0.3f}));
    EXPECT_EQ(labels[1], net.classify({0.9f, 0.8f, 0.7f}));
}

// ---- kNN ------------------------------------------------------------

TEST(KnnTest, NearestNeighborWins)
{
    Knn knn(2, 1);
    float a[] = {0.0f, 0.0f};
    float b[] = {10.0f, 10.0f};
    knn.add(a, 0);
    knn.add(b, 1);

    float q1[] = {1.0f, 1.0f};
    float q2[] = {9.0f, 9.0f};
    EXPECT_EQ(knn.classify(q1), 0);
    EXPECT_EQ(knn.classify(q2), 1);
}

TEST(KnnTest, MajorityVote)
{
    Knn knn(1, 3);
    float p0[] = {0.0f}, p1[] = {1.0f}, p2[] = {2.0f}, p3[] = {10.0f};
    knn.add(p0, 0);
    knn.add(p1, 0);
    knn.add(p2, 1);
    knn.add(p3, 1);
    // Query at 0.5: neighbours {0, 1, 2} vote labels {0, 0, 1}.
    float q[] = {0.5f};
    EXPECT_EQ(knn.classify(q), 0);
}

TEST(KnnTest, BatchMatchesSingles)
{
    Rng rng(12);
    Knn knn(4, 3);
    std::vector<float> point(4);
    for (int i = 0; i < 100; ++i) {
        for (auto &v : point)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
        knn.add(point.data(), i % 3);
    }
    std::vector<float> queries(10 * 4);
    for (auto &v : queries)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    auto batch = knn.classifyBatch(queries.data(), 10);
    for (int q = 0; q < 10; ++q)
        EXPECT_EQ(batch[q], knn.classify(queries.data() + q * 4));
}

TEST(KnnTest, VoteTieGoesToNearestNeighbor)
{
    // k=4 with votes 2:2 — label 1 owns the nearest reference, so it
    // must win even though label 0 has the lower id. (The seed broke
    // ties toward the lowest label id.)
    Knn knn(1, 4);
    float r0[] = {1.0f}, r1[] = {3.0f}, r2[] = {2.0f}, r3[] = {2.5f};
    knn.add(r0, 1);
    knn.add(r1, 1);
    knn.add(r2, 0);
    knn.add(r3, 0);
    float q[] = {0.0f};
    EXPECT_EQ(knn.classify(q), 1);
    auto batch = knn.classifyBatch(q, 1);
    EXPECT_EQ(batch[0], 1);
}

TEST(KnnTest, BatchMatchesSinglesAtScale)
{
    // Larger randomized oracle for the GEMM-decomposed batched path:
    // awkward sizes (refs not a multiple of the register tile, dim not
    // a multiple of anything) and enough queries to span several
    // parallelFor chunks.
    Rng rng(77);
    const std::size_t dim = 37, refs_n = 501, queries_n = 67, k = 9;
    Knn knn(dim, k);
    std::vector<float> point(dim);
    for (std::size_t r = 0; r < refs_n; ++r) {
        for (auto &v : point)
            v = static_cast<float>(rng.uniform(-2.0, 2.0));
        knn.add(point.data(), static_cast<int>(r % 5));
    }
    std::vector<float> queries(queries_n * dim);
    for (auto &v : queries)
        v = static_cast<float>(rng.uniform(-2.0, 2.0));
    auto batch = knn.classifyBatch(queries.data(), queries_n);
    ASSERT_EQ(batch.size(), queries_n);
    for (std::size_t q = 0; q < queries_n; ++q)
        EXPECT_EQ(batch[q], knn.classify(queries.data() + q * dim))
            << "query " << q;
}

// ---- thread-count determinism --------------------------------------
//
// The ThreadPool determinism contract promises bit-identical results
// with LAKE_CPU_THREADS=1, 2 or 8. These sweeps pin that down for the
// three routed hot paths: affine/GEMM, batched kNN, MLP forward.

class ThreadSweepTest : public ::testing::Test
{
  protected:
    void TearDown() override { base::ThreadPool::resetGlobal(0); }

    template <typename Fn>
    void
    expectBitIdentical(Fn &&run)
    {
        base::ThreadPool::resetGlobal(1);
        auto ref = run();
        for (std::size_t threads : {2, 8}) {
            base::ThreadPool::resetGlobal(threads);
            auto got = run();
            ASSERT_EQ(got.size(), ref.size());
            for (std::size_t i = 0; i < ref.size(); ++i)
                ASSERT_EQ(got[i], ref[i])
                    << "element " << i << " at " << threads
                    << " threads";
        }
    }
};

TEST_F(ThreadSweepTest, AffineBitIdentical)
{
    Rng rng(21);
    Matrix x = Matrix::randn(53, 31, rng, 1.0);
    Matrix w = Matrix::randn(17, 31, rng, 1.0);
    std::vector<float> b(17, 0.25f);
    expectBitIdentical([&] {
        Matrix y = Matrix::affine(x, w, b);
        return std::vector<float>(y.data(), y.data() + y.size());
    });
}

TEST_F(ThreadSweepTest, KnnNeighborsBitIdentical)
{
    Rng rng(22);
    const std::size_t dim = 19, refs_n = 230, queries_n = 41, k = 7;
    std::vector<float> refs(refs_n * dim), queries(queries_n * dim);
    for (auto &v : refs)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto &v : queries)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    expectBitIdentical([&] {
        std::vector<compute::Neighbor> nb(queries_n * k);
        compute::knnNeighbors(queries.data(), queries_n, dim,
                              refs.data(), refs_n, k, nb.data());
        std::vector<float> flat;
        flat.reserve(nb.size() * 2);
        for (const auto &n : nb) {
            flat.push_back(n.d2);
            flat.push_back(static_cast<float>(n.index));
        }
        return flat;
    });
}

TEST_F(ThreadSweepTest, MlpForwardBitIdentical)
{
    Rng rng(23);
    Mlp net(MlpConfig::linnos(), rng);
    Matrix x(33, 31);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(i % 13) * 0.07f;
    expectBitIdentical([&] {
        Matrix y = net.forward(x);
        return std::vector<float>(y.data(), y.data() + y.size());
    });
}

TEST(KnnTest, FlopsScaleWithDbAndDim)
{
    Knn small(8, 1), big(64, 1);
    float pt[64] = {};
    small.add(pt, 0);
    for (int i = 0; i < 10; ++i)
        big.add(pt, 0);
    EXPECT_DOUBLE_EQ(small.flopsPerQuery(), 3.0 * 8 * 1);
    EXPECT_DOUBLE_EQ(big.flopsPerQuery(), 3.0 * 64 * 10);
}

} // namespace
} // namespace lake::ml
