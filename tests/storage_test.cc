// Tests for the storage substrate: NVMe model, trace generation
// (Table 4), LinnOS features/training, and the end-to-end engine.

#include <gtest/gtest.h>

#include "storage/e2e.h"
#include "storage/linnos.h"
#include "storage/nvme.h"
#include "storage/trace.h"

namespace lake::storage {
namespace {

TEST(NvmeTest, CompletionsDecrementPending)
{
    sim::Simulator simr;
    NvmeDevice dev(simr, NvmeSpec::samsung980Pro(), 1, "d0");
    int done = 0;
    simr.schedule(0, [&] {
        dev.submit(Io{true, 0, 4096}, [&](Nanos) { ++done; });
        dev.submit(Io{false, 4096, 4096}, [&](Nanos) { ++done; });
        EXPECT_EQ(dev.pending(), 2u);
    });
    simr.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(dev.pending(), 0u);
    EXPECT_EQ(dev.completed(), 2u);
}

TEST(NvmeTest, LatencyGrowsWithQueueDepth)
{
    NvmeSpec spec = NvmeSpec::samsung980Pro();
    spec.cache_hit_rate = 0.0; // isolate the queueing effect
    spec.tail_prob = 0.0;

    // Idle device: arrivals far apart, queue stays shallow.
    sim::Simulator simr;
    NvmeDevice idle(simr, spec, 2, "idle");
    RunningStat idle_lat;
    for (int i = 0; i < 200; ++i) {
        simr.schedule(static_cast<Nanos>(i) * 1_ms, [&] {
            idle.submit(Io{true, 0, 4096},
                        [&](Nanos l) { idle_lat.add(toUs(l)); });
        });
    }
    simr.run();

    // Saturated device: everything lands at once.
    sim::Simulator simr2;
    NvmeDevice busy(simr2, spec, 2, "busy");
    RunningStat busy_lat;
    simr2.schedule(0, [&] {
        for (int i = 0; i < 200; ++i)
            busy.submit(Io{true, 0, 4096},
                        [&](Nanos l) { busy_lat.add(toUs(l)); });
    });
    simr2.run();
    EXPECT_GT(busy_lat.mean(), idle_lat.mean() * 2.0);
}

TEST(NvmeTest, CacheAbsorbsSmallReads)
{
    sim::Simulator simr;
    NvmeSpec spec = NvmeSpec::samsung980Pro();
    spec.tail_prob = 0.0;
    NvmeDevice dev(simr, spec, 3, "d0");

    RunningStat small, large;
    simr.schedule(0, [&] {
        for (int i = 0; i < 500; ++i)
            dev.submit(Io{true, 0, 4096},
                       [&](Nanos l) { small.add(toUs(l)); });
    });
    simr.runUntil(10_s);
    simr.schedule(simr.now(), [&] {
        for (int i = 0; i < 500; ++i)
            dev.submit(Io{true, 0, 1 << 20},
                       [&](Nanos l) { large.add(toUs(l)); });
    });
    simr.run();
    // Small reads often hit DRAM; large reads never do.
    EXPECT_LT(small.mean(), large.mean() * 0.5);
}

TEST(NvmeTest, GcStormsAreWriteDrivenAndEpisodic)
{
    sim::Simulator simr;
    NvmeSpec spec = NvmeSpec::samsung980Pro();
    spec.cache_hit_rate = 0.0;
    spec.tail_prob = 0.0;
    spec.write_interference = 0.0;
    spec.gc_trigger_bytes = 1 << 20; // one expected storm per MiB
    NvmeDevice dev(simr, spec, 5, "d0");

    // No writes -> no storms -> reads stay near the flash baseline.
    RunningStat quiet;
    for (int i = 0; i < 100; ++i) {
        simr.schedule(static_cast<Nanos>(i) * 1_ms, [&] {
            dev.submit(Io{true, 0, 4096},
                       [&](Nanos l) { quiet.add(toUs(l)); });
        });
    }
    simr.run();
    EXPECT_LT(quiet.max(), toUs(spec.read_base) * 1.5);
    EXPECT_FALSE(dev.inGcStorm());

    // A write burst triggers a storm; reads during it pay the penalty.
    sim::Simulator simr2;
    NvmeDevice dev2(simr2, spec, 5, "d1");
    bool saw_storm_read = false;
    simr2.schedule(0, [&] {
        for (int i = 0; i < 64; ++i)
            dev2.submit(Io{false, 0, 1 << 20}, nullptr);
        EXPECT_TRUE(dev2.inGcStorm()); // 64 MiB vs 1 MiB trigger
        dev2.submit(Io{true, 0, 4096}, [&](Nanos l) {
            saw_storm_read = true;
            EXPECT_GT(l, spec.gc_read_penalty);
        });
    });
    simr2.run();
    EXPECT_TRUE(saw_storm_read);
}

TEST(NvmeTest, ReadsWaitBehindInflightWrites)
{
    sim::Simulator simr;
    NvmeSpec spec = NvmeSpec::samsung980Pro();
    spec.cache_hit_rate = 0.0;
    spec.tail_prob = 0.0;
    spec.gc_trigger_bytes = ~0ull >> 1; // storms off
    NvmeDevice dev(simr, spec, 6, "d0");

    Nanos clean_read = 0, interfered_read = 0;
    simr.schedule(0, [&] {
        dev.submit(Io{true, 0, 4096},
                   [&](Nanos l) { clean_read = l; });
    });
    simr.schedule(10_ms, [&] {
        // A large write in flight: the next read waits behind it.
        dev.submit(Io{false, 0, 4 << 20}, nullptr);
        dev.submit(Io{true, 0, 4096},
                   [&](Nanos l) { interfered_read = l; });
    });
    simr.run();
    ASSERT_GT(clean_read, 0u);
    ASSERT_GT(interfered_read, 0u);
    // 4 MiB at write_gbps with the interference share ~ hundreds of us.
    EXPECT_GT(interfered_read, clean_read + 200_us);
}

TEST(NvmeTest, ModernDeviceFasterThanLinnosEra)
{
    NvmeSpec modern = NvmeSpec::samsung980Pro();
    NvmeSpec old = NvmeSpec::enterprise2019();
    EXPECT_LT(modern.read_base, old.read_base);
    EXPECT_GT(modern.cache_hit_rate, old.cache_hit_rate);
}

class TraceSpecTest : public ::testing::TestWithParam<TraceSpec>
{
};

TEST_P(TraceSpecTest, GeneratedTraceMatchesSpec)
{
    TraceSpec spec = GetParam();
    Rng rng(17);
    auto trace = generateTrace(spec, 2_s, rng);
    ASSERT_GT(trace.size(), 100u);
    TraceStats stats = measureTrace(trace);

    EXPECT_NEAR(stats.iops, spec.avg_iops, spec.avg_iops * 0.10);
    EXPECT_NEAR(stats.read_kb_mean, spec.read_kb_mean,
                spec.read_kb_mean * 0.15);
    EXPECT_NEAR(stats.write_kb_mean, spec.write_kb_mean,
                spec.write_kb_mean * 0.15);
    EXPECT_LE(stats.max_arrival, spec.max_arrival + 1);

    // Events are time-ordered, sizes block-aligned.
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i].at, trace[i - 1].at);
    for (const auto &ev : trace)
        EXPECT_EQ(ev.io.bytes % 4096, 0u);
}

INSTANTIATE_TEST_SUITE_P(Table4, TraceSpecTest,
                         ::testing::Values(TraceSpec::azure(),
                                           TraceSpec::bingI(),
                                           TraceSpec::cosmos()));

TEST(TraceTest, ReratingScalesIops)
{
    Rng rng(19);
    TraceSpec base = TraceSpec::bingI();
    TraceSpec hot = base.rerated(3.0);
    EXPECT_DOUBLE_EQ(hot.avg_iops, base.avg_iops * 3.0);

    auto t1 = generateTrace(base, 1_s, rng);
    auto t2 = generateTrace(hot, 1_s, rng);
    EXPECT_NEAR(static_cast<double>(t2.size()),
                3.0 * static_cast<double>(t1.size()),
                0.3 * static_cast<double>(t2.size()));
}

TEST(LinnosFeatureTest, DigitEncoding)
{
    float out[kLinnosFeatures];
    std::array<std::uint32_t, kLinnosHistory> lats = {1234567, 89, 0, 5};
    encodeLinnosFeatures(42, lats, out);

    // Pending 42 -> digits 0, 4, 2 scaled by 0.1.
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[1], 0.4f);
    EXPECT_FLOAT_EQ(out[2], 0.2f);
    // First latency 1234567 -> digits 1,2,3,4,5,6,7.
    for (int d = 0; d < 7; ++d)
        EXPECT_FLOAT_EQ(out[3 + d], 0.1f * (d + 1));
    // 89 -> 0,0,0,0,0,8,9.
    EXPECT_FLOAT_EQ(out[10 + 5], 0.8f);
    EXPECT_FLOAT_EQ(out[10 + 6], 0.9f);
}

TEST(LinnosFeatureTest, ClampsOverflow)
{
    float out[kLinnosFeatures];
    std::array<std::uint32_t, kLinnosHistory> lats = {4000000000u, 0, 0,
                                                      0};
    encodeLinnosFeatures(5000, lats, out);
    EXPECT_FLOAT_EQ(out[0], 0.9f); // 999
    EXPECT_FLOAT_EQ(out[1], 0.9f);
    EXPECT_FLOAT_EQ(out[2], 0.9f);
    EXPECT_FLOAT_EQ(out[3], 0.9f); // 9999999
}

TEST(LinnosTrainingTest, DatasetLabelsAreMechanisticTail)
{
    LinnosDataset data = collectLinnosData(
        TraceSpec::azure().rerated(1.5), NvmeSpec::samsung980Pro(),
        500_ms, 0.85, 7);
    ASSERT_GT(data.samples.size(), 1000u);
    // The threshold never sits inside the fast-mode noise band: it is
    // floored well above an ordinary flash read...
    EXPECT_GE(data.threshold_us,
              1.8 * toUs(NvmeSpec::samsung980Pro().read_base) - 1e-6);
    // ...so at most the quantile's share of reads is labelled slow.
    EXPECT_LE(data.slow_fraction, 0.15 + 0.03);
}

TEST(LinnosTrainingTest, ModelBeatsChanceUnderQueuePressure)
{
    // Queue-dependent latency is the learnable signal; the generated
    // workload must stress the device (the paper's re-rating) or
    // modern NVMe caches reduce latency to feature-independent noise.
    Rng rng(23);
    TraceSpec spec = TraceSpec::azure().rerated(3.0);
    LinnosDataset data = collectLinnosData(
        spec, NvmeSpec::samsung980Pro(), 500_ms, 0.75, 7);
    ml::Mlp net = trainLinnosModel(data, 0, 6, 0.05f, rng);

    // Evaluate *balanced* accuracy on held-out data from a new seed:
    // an always-fast classifier scores exactly 0.5 here.
    LinnosDataset test = collectLinnosData(
        spec, NvmeSpec::samsung980Pro(), 300_ms, 0.75, 99);
    ml::Matrix xs(1, kLinnosFeatures);
    std::size_t hit_slow = 0, n_slow = 0, hit_fast = 0, n_fast = 0;
    for (const LinnosSample &s : test.samples) {
        std::copy(s.x.begin(), s.x.end(), xs.row(0));
        int pred = net.classify(xs)[0];
        if (s.slow) {
            ++n_slow;
            hit_slow += pred == 1;
        } else {
            ++n_fast;
            hit_fast += pred == 0;
        }
    }
    ASSERT_GT(n_slow, 50u);
    ASSERT_GT(n_fast, 50u);
    double balanced =
        0.5 * (static_cast<double>(hit_slow) / n_slow +
               static_cast<double>(hit_fast) / n_fast);
    EXPECT_GT(balanced, 0.80);
}

TEST(E2eTest, BaselineRunsAndMeasures)
{
    E2eConfig cfg;
    cfg.mode = E2eMode::Baseline;
    cfg.duration = 300_ms;
    std::vector<TraceSpec> traces(3, TraceSpec::bingI());
    E2eResult r = runE2e(traces, cfg);
    EXPECT_GT(r.reads, 500u);
    EXPECT_GT(r.writes, 100u);
    EXPECT_GT(r.avg_read_lat_us, 0.0);
    EXPECT_EQ(r.rerouted, 0u);
    EXPECT_EQ(r.inference_batches, 0u);
}

TEST(E2eTest, LakeModeReroutesUnderPressure)
{
    Rng rng(31);
    LinnosDataset data =
        collectLinnosData(TraceSpec::azure().rerated(3.0),
                          NvmeSpec::samsung980Pro(), 400_ms, 0.80, 7);
    ml::Mlp net = trainLinnosModel(data, 0, 3, 0.05f, rng);

    E2eConfig cfg;
    cfg.mode = E2eMode::LakeNn;
    cfg.model = &net;
    cfg.duration = 300_ms;
    cfg.threshold_us = data.threshold_us;
    std::vector<TraceSpec> traces = {TraceSpec::azure().rerated(3.0),
                                     TraceSpec::bingI().rerated(3.0),
                                     TraceSpec::cosmos()};
    E2eResult r = runE2e(traces, cfg);
    EXPECT_GT(r.reads, 1000u);
    EXPECT_GT(r.inference_batches, 10u);
    EXPECT_GT(r.avg_batch, 1.0);
    // The model predicts *some* slow I/Os in a stressed mixed workload.
    EXPECT_GT(r.rerouted, 0u);
}

TEST(E2eTest, AdaptiveModeGatesUselessInference)
{
    // On a calm uniform workload the model predicts almost nothing
    // slow; the §7.1 modulation gate must switch ML off and recover
    // (most of) the baseline's latency.
    Rng rng(41);
    LinnosDataset data =
        collectLinnosData(TraceSpec::azure().rerated(3.0),
                          NvmeSpec::samsung980Pro(), 400_ms, 0.85, 7);
    ml::Mlp net = trainLinnosModel(data, 0, 4, 0.05f, rng);

    // A device with no slow episodes at all: GC storms effectively
    // disabled, no write interference — there is nothing for the
    // model to predict, so every inference is pure overhead.
    std::vector<TraceSpec> calm(3, TraceSpec::bingI());
    NvmeSpec placid = NvmeSpec::samsung980Pro();
    placid.gc_trigger_bytes = ~0ull >> 1;
    placid.write_interference = 0.0;
    placid.tail_prob = 0.0;

    E2eConfig cfg;
    cfg.duration = 400_ms;
    cfg.model = &net;
    cfg.device = placid;
    cfg.gate.window = 128;
    cfg.gate.min_positive_rate = 0.02;

    cfg.mode = E2eMode::Baseline;
    E2eResult base = runE2e(calm, cfg);
    cfg.mode = E2eMode::LakeNn;
    E2eResult plain = runE2e(calm, cfg);
    cfg.mode = E2eMode::LakeAdaptive;
    E2eResult adaptive = runE2e(calm, cfg);

    EXPECT_GT(adaptive.gate_closures, 0u);
    EXPECT_GT(adaptive.gated_batches, 0u);
    // Gating recovers (most of) the baseline; always-on ML does not.
    EXPECT_LT(adaptive.avg_read_lat_us - base.avg_read_lat_us,
              plain.avg_read_lat_us - base.avg_read_lat_us);
    EXPECT_LT(adaptive.avg_read_lat_us, base.avg_read_lat_us * 1.10);
}

TEST(E2eTest, CpuModeChargesInferenceOnIssuePath)
{
    Rng rng(37);
    LinnosDataset data =
        collectLinnosData(TraceSpec::bingI(), NvmeSpec::samsung980Pro(),
                          300_ms, 0.85, 7);
    ml::Mlp net = trainLinnosModel(data, 0, 2, 0.05f, rng);

    E2eConfig base_cfg;
    base_cfg.mode = E2eMode::Baseline;
    base_cfg.duration = 200_ms;
    E2eConfig cpu_cfg = base_cfg;
    cpu_cfg.mode = E2eMode::CpuNn;
    cpu_cfg.model = &net;

    // Low-pressure workload: §7.1 finds the NN *degrades* latency when
    // devices are not stressed (inference cost, no reroute benefit).
    std::vector<TraceSpec> traces(3, TraceSpec::bingI());
    E2eResult base = runE2e(traces, base_cfg);
    E2eResult cpu = runE2e(traces, cpu_cfg);
    EXPECT_GT(cpu.avg_read_lat_us, base.avg_read_lat_us * 0.9);
}

} // namespace
} // namespace lake::storage
