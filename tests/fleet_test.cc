// Tests for the sharded lakeD fleet (DESIGN.md §13) and the three
// single-device-assumption bugfixes this PR carries:
//
//  1. disjoint per-device VA windows (fleet devices used to share
//     Device::kVaBase, so pointers from different devices aliased) and
//     cross-device pointer rejection in GpuContext::launchKernel;
//  2. per-shard remoting health (the degraded latch used to be
//     Lake-global, so one sick device forced the whole fleet to CPU);
//  3. per-device contention-probe state (a single MovingAverage
//     blended every device's utilization into one stale signal).
//
// Plus the fleet contract itself: CuSetDevice muxing, the 1-device
// fleet's bit-identity with the classic stack, and a TSan-exercised
// K-shard concurrent dispatch stress under the multi-tenant generator.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "base/time.h"
#include "channel/channel.h"
#include "channel/fault.h"
#include "gpu/context.h"
#include "gpu/device.h"
#include "gpu/fleet.h"
#include "gpu/kernels.h"
#include "gpu/spec.h"
#include "ml/backends.h"
#include "ml/mlp.h"
#include "policy/policy.h"
#include "registry/manager.h"
#include "remote/daemon.h"
#include "remote/fleet.h"
#include "remote/lakelib.h"
#include "serve/serve.h"
#include "serve/traffic.h"
#include "shm/arena.h"

using namespace lake;
using channel::FaultSpec;
using gpu::CuResult;
using gpu::DevicePtr;

namespace {

gpu::FleetConfig
fleetConfig(std::size_t devices, std::size_t shards = 1)
{
    gpu::FleetConfig cfg;
    cfg.enabled = true;
    cfg.devices = devices;
    cfg.shards = shards;
    return cfg;
}

} // namespace

// ---- bugfix 1: disjoint VA windows ---------------------------------

TEST(DeviceFleetTest, DevicesAllocateFromDisjointVaWindows)
{
    gpu::DeviceFleet fleet(fleetConfig(2));
    DevicePtr p0 = 0, p1 = 0;
    ASSERT_EQ(fleet.at(0).memAlloc(&p0, 4096), CuResult::Success);
    ASSERT_EQ(fleet.at(1).memAlloc(&p1, 4096), CuResult::Success);

    // Pre-fix both devices minted from the shared kVaBase cursor start,
    // so the first allocation on each was the *same* pointer value.
    EXPECT_NE(p0, p1);
    EXPECT_GE(p0, gpu::Device::kVaBase);
    EXPECT_LT(p0, gpu::Device::kVaBase + gpu::Device::kVaWindow);
    EXPECT_GE(p1, gpu::Device::kVaBase + gpu::Device::kVaWindow);

    EXPECT_TRUE(fleet.at(0).ownsVa(p0));
    EXPECT_FALSE(fleet.at(0).ownsVa(p1));
    EXPECT_TRUE(fleet.at(1).ownsVa(p1));
    EXPECT_FALSE(fleet.at(1).ownsVa(p0));

    EXPECT_EQ(fleet.ownerOf(p0), 0u);
    EXPECT_EQ(fleet.ownerOf(p1), 1u);
    // Scalars below kVaBase belong to nobody.
    EXPECT_EQ(fleet.ownerOf(1234), fleet.size());

    // A foreign pointer resolves to nothing (it used to alias the
    // other device's storage byte for byte).
    EXPECT_EQ(fleet.at(0).resolve(p1, 16), nullptr);
    EXPECT_EQ(fleet.at(0).baseOf(p1), 0u);
}

TEST(DeviceFleetTest, CrossDevicePointerIsRejectedAtLaunch)
{
    Clock clock;
    gpu::DeviceFleet fleet(fleetConfig(2));
    gpu::GpuContext ctx0(fleet.at(0), clock);
    gpu::GpuContext ctx1(fleet.at(1), clock);

    DevicePtr mine = 0, foreign = 0;
    ASSERT_EQ(ctx0.memAlloc(&mine, 1024), CuResult::Success);
    ASSERT_EQ(ctx1.memAlloc(&foreign, 1024), CuResult::Success);

    gpu::LaunchConfig cfg;
    cfg.kernel = "vec_add";
    cfg.arg(mine).arg(mine).arg(foreign);
    cfg.args.push_back(16); // element count (scalar, below kVaBase)
    EXPECT_EQ(ctx0.launchKernel(cfg), CuResult::InvalidValue);
    EXPECT_EQ(fleet.at(0).launches(), 0u);
    EXPECT_EQ(fleet.at(1).launches(), 0u);

    // The same launch with only owned pointers goes through.
    gpu::LaunchConfig ok;
    ok.kernel = "vec_add";
    ok.arg(mine).arg(mine).arg(mine);
    ok.args.push_back(16);
    EXPECT_EQ(ctx0.launchKernel(ok), CuResult::Success);
    EXPECT_EQ(fleet.at(0).launches(), 1u);

    // Copies are covered by resolve(): a foreign destination fails.
    std::vector<std::uint8_t> buf(64, 0xab);
    EXPECT_EQ(ctx0.memcpyHtoD(foreign, buf.data(), buf.size()),
              CuResult::InvalidValue);
}

TEST(DeviceFleetTest, MigWeightsScaleRatesNotOverheads)
{
    gpu::FleetConfig cfg = fleetConfig(2);
    cfg.weights = {1.0, 0.5};
    gpu::DeviceFleet fleet(cfg);
    const gpu::DeviceSpec &full = fleet.at(0).spec();
    const gpu::DeviceSpec &half = fleet.at(1).spec();
    EXPECT_DOUBLE_EQ(half.effective_gflops, full.effective_gflops * 0.5);
    EXPECT_DOUBLE_EQ(half.pcie_gbps, full.pcie_gbps * 0.5);
    EXPECT_EQ(half.mem_capacity, full.mem_capacity / 2);
    // Fixed costs are per-operation, not per-slice.
    EXPECT_EQ(half.launch_overhead, full.launch_overhead);
    EXPECT_EQ(half.transfer_overhead, full.transfer_overhead);
}

TEST(DeviceFleetTest, EnvKnobsApplyOnRequest)
{
    ::setenv("LAKE_FLEET", "1", 1);
    ::setenv("LAKE_DEVICES", "4", 1);
    ::setenv("LAKE_SHARDS", "8", 1); // clamped to devices
    gpu::FleetConfig cfg;
    cfg.applyEnv();
    ::unsetenv("LAKE_FLEET");
    ::unsetenv("LAKE_DEVICES");
    ::unsetenv("LAKE_SHARDS");
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.devices, 4u);
    EXPECT_EQ(cfg.shards, 4u);
    // A default-constructed config never reads the environment.
    EXPECT_FALSE(gpu::FleetConfig{}.enabled);
}

// ---- bugfix 2: per-shard degradation -------------------------------

TEST(ShardFleetTest, OneSickShardDoesNotDegradeTheFleet)
{
    gpu::DeviceFleet fleet(fleetConfig(2, 2));
    remote::ShardParams params;
    params.degrade_threshold = 3;
    remote::ShardFleet shards(fleet, 2, params);

    // Shard 0's transport goes dark; shard 1's stays clean.
    FaultSpec spec;
    spec.drop = 1.0;
    shards.shard(0).channel().installFaults(spec);

    for (std::size_t i = 0; i < params.degrade_threshold; ++i)
        EXPECT_EQ(shards.shard(0).lib().cuCtxSynchronize(),
                  CuResult::Unavailable);

    EXPECT_TRUE(shards.shard(0).health().degraded.load());
    // Pre-fix the latch was Lake-global: shard 0's failures would have
    // marked every remoting lane degraded.
    EXPECT_FALSE(shards.shard(1).health().degraded.load());

    // The healthy shard still executes work end to end.
    DevicePtr p = 0;
    EXPECT_EQ(shards.shard(1).lib().cuMemAlloc(&p, 4096),
              CuResult::Success);
    EXPECT_EQ(fleet.ownerOf(p), 1u);

    // And the router routes around the sick shard: the first key is
    // round-robin-seeded onto device 0, whose shard is vetoed, so the
    // placement hunts to device 1 and re-pins the key there.
    remote::FleetRouter router(shards,
                               policy::FleetPlacementPolicy::Config{});
    policy::PolicyInput in;
    in.batch_size = 16;
    in.now = shards.shard(1).clock().now();
    policy::Placement p1 = router.placeFor("reg", in);
    EXPECT_EQ(p1.engine, policy::Engine::Gpu);
    EXPECT_EQ(p1.device, 1u);
    EXPECT_EQ(router.migrations(), 1u);
    EXPECT_EQ(router.lastPlacement("reg"), 1u);

    // Operator re-arm clears only the sick shard's latch.
    shards.shard(0).health().reset();
    EXPECT_FALSE(shards.shard(0).health().degraded.load());
}

// ---- bugfix 3: per-device probe state ------------------------------

TEST(FleetPlacementPolicyTest, PerDeviceSmoothersSteerBetweenDevices)
{
    int calls0 = 0, calls1 = 0;
    std::vector<policy::UtilProbe> probes;
    probes.push_back([&](Nanos) {
        ++calls0;
        return 100.0; // device 0 saturated
    });
    probes.push_back([&](Nanos) {
        ++calls1;
        return 0.0; // device 1 idle
    });
    policy::FleetPlacementPolicy::Config cfg;
    policy::FleetPlacementPolicy pol(std::move(probes), cfg);

    policy::PolicyInput in;
    in.batch_size = 16;
    in.now = 0;
    policy::Placement p = pol.place(in, /*sticky=*/0);
    // Pre-fix a single MovingAverage blended the two readings to 50%
    // (over the 40% threshold) and the policy refused both devices;
    // per-device smoothers see 100% vs 0% and steer to device 1.
    EXPECT_EQ(p.engine, policy::Engine::Gpu);
    EXPECT_EQ(p.device, 1u);
    EXPECT_EQ(calls0, 1);
    EXPECT_EQ(calls1, 1);
    EXPECT_DOUBLE_EQ(pol.smoothedUtilization(0), 100.0);
    EXPECT_DOUBLE_EQ(pol.smoothedUtilization(1), 0.0);

    // Probes are rate-limited per device: a decision inside the probe
    // interval reuses the smoothed value without re-probing.
    in.now = 1_ms;
    p = pol.place(in, 1);
    EXPECT_EQ(p.device, 1u);
    EXPECT_EQ(calls1, 1);

    // The staleness reset is per device too: a long idle gap drops
    // only the decided device's window and rebuilds it from a fresh
    // reading (device 0's state is untouched by device 1's reset).
    in.now = 1_ms +
             cfg.contention.probe_interval * (cfg.contention.stale_windows + 2);
    p = pol.place(in, 1);
    EXPECT_EQ(p.device, 1u);
    EXPECT_EQ(calls1, 2);
    EXPECT_DOUBLE_EQ(pol.smoothedUtilization(1), 0.0);
    EXPECT_DOUBLE_EQ(pol.smoothedUtilization(0), 100.0);

    // Below the profitability crossover nothing probes for the GPU win.
    in.batch_size = 1;
    p = pol.place(in, 1);
    EXPECT_EQ(p.engine, policy::Engine::Cpu);
}

// ---- CuSetDevice muxing --------------------------------------------

TEST(ShardFleetTest, CuSetDeviceTargetsTheActivatedDevice)
{
    gpu::DeviceFleet fleet(fleetConfig(2, 1));
    remote::ShardParams params;
    remote::ShardFleet shards(fleet, 1, params);
    ASSERT_EQ(shards.shard(0).deviceCount(), 2u);
    remote::LakeShard &sh = shards.shard(0);

    DevicePtr p0 = 0, p1 = 0;
    ASSERT_EQ(sh.lib().cuMemAlloc(&p0, 4096), CuResult::Success);
    EXPECT_EQ(fleet.ownerOf(p0), 0u);

    ASSERT_EQ(sh.activate(1), CuResult::Success);
    ASSERT_EQ(sh.lib().cuMemAlloc(&p1, 4096), CuResult::Success);
    EXPECT_EQ(fleet.ownerOf(p1), 1u);

    // Re-activating the active device is elided entirely (no wire
    // traffic): the single-device bit-identity guarantee rests on it.
    std::uint64_t calls = sh.lib().calls();
    EXPECT_EQ(sh.activate(1), CuResult::Success);
    EXPECT_EQ(sh.lib().calls(), calls);

    // Launches land on the active device only.
    std::vector<float> host(16, 1.0f);
    ASSERT_EQ(sh.lib().cuMemcpyHtoD(p1, host.data(),
                                    host.size() * sizeof(float)),
              CuResult::Success);
    gpu::LaunchConfig cfg;
    cfg.kernel = "vec_add";
    cfg.arg(p1).arg(p1).arg(p1);
    cfg.args.push_back(16);
    ASSERT_EQ(sh.lib().cuLaunchKernel(cfg), CuResult::Success);
    ASSERT_EQ(sh.lib().cuCtxSynchronize(), CuResult::Success);
    EXPECT_EQ(fleet.at(1).launches(), 1u);
    EXPECT_EQ(fleet.at(0).launches(), 0u);

    // The daemon rejects an out-of-range device index.
    EXPECT_EQ(sh.lib().cuSetDevice(7), CuResult::InvalidValue);
}

// ---- 1-device fleet bit-identity -----------------------------------

TEST(ShardFleetTest, OneDeviceFleetIsBitIdenticalToPlainStack)
{
    // The classic (non-fleet) remoting stack...
    struct Plain
    {
        Clock clock;
        gpu::Device dev{gpu::DeviceSpec::a100()};
        shm::ShmArena arena{128ull << 20};
        channel::Channel chan{channel::Kind::Netlink, clock};
        remote::LakeDaemon daemon{chan, arena, dev, clock};
        remote::LakeLib lib{chan, arena, [this] { daemon.processPending(); }};
    } a;
    auto last = std::make_shared<double>(100.0);
    policy::UtilProbe probe_a = [&a, last](Nanos) {
        remote::RemoteUtilization u;
        if (a.lib.nvmlGetUtilization(&u) == CuResult::Success)
            *last = static_cast<double>(u.gpu);
        return *last;
    };
    policy::ContentionAwarePolicy pol_a(probe_a,
                                        policy::ContentionConfig{});

    // ...versus a 1-device, 1-shard fleet routed by the placement
    // policy. Identical decisions, scores, wire traffic and virtual
    // time are the acceptance bar for fleet-off-by-default.
    gpu::DeviceFleet fleet(fleetConfig(1, 1));
    remote::ShardParams params;
    remote::ShardFleet shards(fleet, 1, params);
    remote::FleetRouter router(shards,
                               policy::FleetPlacementPolicy::Config{});
    std::unique_ptr<policy::ExecPolicy> pol_b = router.policyFor("reg");
    remote::LakeShard &sh = shards.shard(0);

    Rng model_rng_a(42), model_rng_b(42);
    ml::Mlp model_a(ml::MlpConfig::linnos(), model_rng_a);
    ml::Mlp model_b(ml::MlpConfig::linnos(), model_rng_b);
    ml::KernelCpu cpu_a(a.clock, gpu::CpuSpec::xeonGold6226R());
    ml::KernelCpu cpu_b(sh.clock(), gpu::CpuSpec::xeonGold6226R());
    ml::CpuMlp cpu_mlp_a(model_a, cpu_a);
    ml::CpuMlp cpu_mlp_b(model_b, cpu_b);
    ml::LakeMlp gpu_mlp_a(model_a, a.lib, /*sync_copy=*/true,
                          /*max_batch=*/32);
    ml::LakeMlp gpu_mlp_b(model_b, sh.lib(), /*sync_copy=*/true,
                          /*max_batch=*/32);
    ASSERT_EQ(a.clock.now(), sh.clock().now());

    Rng drive(7);
    std::size_t gpu_rounds = 0;
    for (int round = 0; round < 40; ++round) {
        Nanos gap = drive.uniformInt(0, 4'000'000);
        a.clock.advance(gap);
        sh.clock().advance(gap);

        std::size_t batch = drive.uniformInt(1, 32);
        ml::Matrix x(batch, model_a.config().input);
        for (std::size_t r = 0; r < x.rows(); ++r)
            for (std::size_t c = 0; c < x.cols(); ++c)
                x.at(r, c) = static_cast<float>(drive.uniform(0.0, 1.0));

        policy::PolicyInput in_a{batch, a.clock.now()};
        policy::PolicyInput in_b{batch, sh.clock().now()};
        policy::Engine e_a = pol_a.decide(in_a);
        policy::Engine e_b = pol_b->decide(in_b);
        ASSERT_EQ(e_a, e_b) << "round " << round;

        std::vector<int> labels_a, labels_b;
        if (e_a == policy::Engine::Gpu) {
            ++gpu_rounds;
            labels_a = gpu_mlp_a.classify(x);
            labels_b = gpu_mlp_b.classify(x);
        } else {
            labels_a = cpu_mlp_a.classify(x);
            labels_b = cpu_mlp_b.classify(x);
        }
        ASSERT_EQ(labels_a, labels_b) << "round " << round;
        ASSERT_EQ(a.clock.now(), sh.clock().now()) << "round " << round;
    }
    // The property is vacuous unless both engines were exercised.
    EXPECT_GT(gpu_rounds, 0u);
    EXPECT_LT(gpu_rounds, 40u);
    EXPECT_EQ(a.lib.calls(), sh.lib().calls());
    EXPECT_EQ(a.dev.launches(), fleet.at(0).launches());
    EXPECT_EQ(router.migrations(), 0u);
}

// ---- K-shard concurrent dispatch (TSan) ----------------------------

TEST(ShardFleetTest, ConcurrentShardDispatchUnderMultiTenantLoad)
{
    constexpr std::size_t kShards = 4;
    gpu::DeviceFleet fleet(fleetConfig(kShards, kShards));
    remote::ShardParams params;
    remote::ShardFleet shards(fleet, kShards, params);
    remote::FleetRouter router(shards,
                               policy::FleetPlacementPolicy::Config{});

    // One serving stack per worker thread: its own clock, manager and
    // tenant population. The threads meet in the router (placement) and
    // in each other's shards (probes cross shard mutexes), which is
    // exactly the surface TSan must see clean.
    auto worker = [&](std::size_t k) {
        Clock clock;
        registry::RegistryManager mgr(clock);
        std::string key = "worker" + std::to_string(k);
        const char *kSys = "fleet_stress";

        registry::Classifier cpu_classify =
            [](const std::vector<registry::FeatureVector> &fvs) {
                return std::vector<float>(fvs.size(), 0.0f);
            };
        registry::Classifier gpu_classify =
            [&, key](const std::vector<registry::FeatureVector> &fvs) {
                std::size_t dev = router.lastPlacement(key);
                router.noteDispatch(dev, fvs.size());
                remote::LakeShard &sh = shards.shardFor(dev);
                {
                    std::lock_guard<std::mutex> lock(sh.mu());
                    if (sh.activate(shards.localIndex(dev)) ==
                        CuResult::Success) {
                        DevicePtr p = 0;
                        if (sh.lib().cuMemAlloc(&p, fvs.size() * 64) ==
                            CuResult::Success) {
                            sh.lib().cuCtxSynchronize();
                            sh.lib().cuMemFree(p);
                        }
                    }
                }
                router.noteDone(dev);
                return std::vector<float>(fvs.size(), 1.0f);
            };

        registry::Schema schema;
        schema.add("tenant");
        ASSERT_TRUE(mgr.createRegistry(key, kSys, schema, 4).isOk());
        registry::Registry *reg = mgr.find(key, kSys);
        ASSERT_NE(reg, nullptr);
        ASSERT_TRUE(
            reg->registerClassifier(registry::Arch::Cpu, cpu_classify)
                .isOk());
        ASSERT_TRUE(
            reg->registerClassifier(registry::Arch::Gpu, gpu_classify)
                .isOk());
        reg->registerPolicy(router.policyFor(key));
        registry::ScoringConfig scfg;
        scfg.enabled = true;
        ASSERT_TRUE(mgr.enableScoring(scfg).isOk());

        serve::ServeConfig cfg;
        cfg.enabled = true;
        cfg.tenants = 8;
        cfg.rate_rps = 20000.0;
        cfg.seed = 0x1a4e + k;
        serve::TrafficGenerator gen(mgr, clock, cfg, kSys,
                                    {key});
        gen.run(1_ms);
        serve::ServeSummary s = gen.summary(1_ms);
        EXPECT_GT(s.admits, 0u);
    };

    std::vector<std::thread> threads;
    for (std::size_t k = 0; k < kShards; ++k)
        threads.emplace_back(worker, k);
    for (auto &t : threads)
        t.join();

    // Every dispatch was balanced by a completion.
    for (std::size_t d = 0; d < fleet.size(); ++d)
        EXPECT_EQ(router.pendingDepth(d), 0u);
    EXPECT_GT(shards.totalCalls(), 0u);
    EXPECT_GT(shards.makespan(), 0u);
}
