// Unit tests for the base toolkit: rng distributions, statistics,
// ring buffer, lock-free map, status/result, and virtual time.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "base/lockfree_map.h"
#include "base/ring_buffer.h"
#include "base/rng.h"
#include "base/stats.h"
#include "base/status.h"
#include "base/time.h"

namespace lake {
namespace {

TEST(TimeTest, LiteralsScale)
{
    EXPECT_EQ(1_us, 1000u);
    EXPECT_EQ(1_ms, 1000u * 1000u);
    EXPECT_EQ(1_s, 1000u * 1000u * 1000u);
    EXPECT_DOUBLE_EQ(toUs(1500), 1.5);
    EXPECT_DOUBLE_EQ(toMs(2'500'000), 2.5);
}

TEST(TimeTest, ClockMonotone)
{
    Clock c;
    EXPECT_EQ(c.now(), 0u);
    c.advance(5_us);
    EXPECT_EQ(c.now(), 5000u);
    c.advanceTo(3_us); // stale deadline: no-op
    EXPECT_EQ(c.now(), 5000u);
    c.advanceTo(9_us);
    EXPECT_EQ(c.now(), 9000u);
    c.reset();
    EXPECT_EQ(c.now(), 0u);
}

TEST(RngTest, Deterministic)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(1);
    RunningStat s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.exponential(250.0));
    EXPECT_NEAR(s.mean(), 250.0, 5.0);
}

TEST(RngTest, LognormalMoments)
{
    Rng rng(2);
    RunningStat s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.lognormalByMoments(30.0, 28.0));
    EXPECT_NEAR(s.mean(), 30.0, 1.0);
    EXPECT_NEAR(s.stddev(), 28.0, 2.5);
}

TEST(RngTest, UniformIntBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.uniformInt(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(RngTest, ChanceEdges)
{
    Rng rng(4);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(RunningStatTest, Moments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.1380899, 1e-6); // sample stddev
}

TEST(RunningStatTest, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(PercentileTest, ExactRanks)
{
    PercentileTracker p;
    for (int i = 1; i <= 100; ++i)
        p.add(i);
    EXPECT_NEAR(p.percentile(0.0), 1.0, 1e-9);
    EXPECT_NEAR(p.percentile(100.0), 100.0, 1e-9);
    EXPECT_NEAR(p.percentile(50.0), 50.5, 1e-9);
    EXPECT_NEAR(p.percentile(95.0), 95.05, 1e-9);
}

TEST(PercentileTest, AddAfterQuery)
{
    PercentileTracker p;
    p.add(10.0);
    EXPECT_DOUBLE_EQ(p.percentile(50.0), 10.0);
    p.add(20.0);
    EXPECT_DOUBLE_EQ(p.percentile(100.0), 20.0);
}

// Regression: add() used to leave sorted_ set after a percentile()
// call, so later samples were appended to a vector still flagged
// sorted and queries interpolated over partially-sorted data.
TEST(PercentileTest, InterleavedAddQuery)
{
    PercentileTracker p;
    p.add(50.0);
    EXPECT_DOUBLE_EQ(p.percentile(50.0), 50.0); // sorts, sets the flag
    p.add(10.0);                                // lands past the sorted prefix
    p.add(90.0);
    EXPECT_DOUBLE_EQ(p.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(p.percentile(50.0), 50.0);
    EXPECT_DOUBLE_EQ(p.percentile(100.0), 90.0);

    // Interleave against an oracle that sorts from scratch every query.
    PercentileTracker q;
    std::vector<double> oracle;
    for (int i = 0; i < 200; ++i) {
        double v = static_cast<double>((i * 7919) % 199);
        q.add(v);
        oracle.push_back(v);
        if (i % 17 == 0) {
            std::vector<double> sorted = oracle;
            std::sort(sorted.begin(), sorted.end());
            double rank = 0.95 * static_cast<double>(sorted.size() - 1);
            std::size_t lo = static_cast<std::size_t>(rank);
            std::size_t hi = std::min(lo + 1, sorted.size() - 1);
            double frac = rank - static_cast<double>(lo);
            double want = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
            EXPECT_DOUBLE_EQ(q.percentile(95.0), want) << "at i=" << i;
        }
    }
}

TEST(MovingAverageTest, Window)
{
    MovingAverage m(3);
    EXPECT_DOUBLE_EQ(m.value(), 0.0);
    m.add(3.0);
    m.add(6.0);
    EXPECT_FALSE(m.warm());
    EXPECT_DOUBLE_EQ(m.value(), 4.5);
    m.add(9.0);
    EXPECT_TRUE(m.warm());
    EXPECT_DOUBLE_EQ(m.value(), 6.0);
    m.add(12.0); // 3.0 falls out
    EXPECT_DOUBLE_EQ(m.value(), 9.0);
}

// Regression: the incremental sum_ accumulated float error; once a
// large outlier left the window the cancellation wiped out the small
// samples still in it. The tracker now periodically re-derives the sum
// from the window, so a long add sequence must match a fresh average.
TEST(MovingAverageTest, LongSequenceMatchesFreshWindowAverage)
{
    MovingAverage m(4);
    m.add(1e16); // beyond 2^53: 1e16 + 1.0 rounds back to 1e16
    std::deque<double> window = {1e16};
    for (int i = 0; i < 2000; ++i) {
        m.add(1.0);
        window.push_back(1.0);
        if (window.size() > 4)
            window.pop_front();
    }
    double fresh = 0.0;
    for (double v : window)
        fresh += v;
    fresh /= static_cast<double>(window.size());
    EXPECT_DOUBLE_EQ(fresh, 1.0);
    EXPECT_DOUBLE_EQ(m.value(), fresh);
}

TEST(BusyTrackerTest, WindowedUtilization)
{
    BusyTracker b;
    b.addBusy(0, 50);
    b.addBusy(100, 150);
    // Partial overlap first (probes must be monotone): window
    // [25, 125] covers 25 + 25 busy.
    EXPECT_NEAR(b.utilization(125, 100), 50.0, 1e-9);
    // Window [0, 200]: 100 busy of 200.
    EXPECT_NEAR(b.utilization(200, 200), 50.0, 1e-9);
    // Window [150, 200]: idle.
    EXPECT_NEAR(b.utilization(200, 50), 0.0, 1e-9);
    EXPECT_EQ(b.totalBusy(), 100u);
}

TEST(BusyTrackerTest, OutOfOrderSpans)
{
    BusyTracker b;
    b.addBusy(100, 200);
    b.addBusy(0, 50);
    EXPECT_NEAR(b.utilization(200, 200), 75.0, 1e-9);
}

// Window-edge behaviour of the utilization probe — the admission
// layer's load signal. Each case uses its own tracker so the
// monotone-probe contract and max-window compaction of one probe
// cannot leak into the next.
TEST(BusyTrackerTest, SpanEndingExactlyAtWindowEdgeIsExcluded)
{
    BusyTracker b;
    b.addBusy(100, 200);
    // Window [200, 300]: the span's half-open [100, 200) contributes
    // nothing at the boundary.
    EXPECT_NEAR(b.utilization(300, 100), 0.0, 1e-9);
}

TEST(BusyTrackerTest, SpanStartingExactlyAtProbeTimeIsExcluded)
{
    BusyTracker b;
    b.addBusy(100, 200);
    b.addBusy(300, 400);
    // Window [100, 300]: the first span is fully inside; the second
    // starts exactly at `now` and must not count.
    EXPECT_NEAR(b.utilization(300, 200), 50.0, 1e-9);
}

TEST(BusyTrackerTest, SpanStraddlingBothWindowEdges)
{
    BusyTracker b;
    b.addBusy(50, 450);
    // Window [100, 400] sits entirely inside one busy span.
    EXPECT_NEAR(b.utilization(400, 300), 100.0, 1e-9);
}

TEST(BusyTrackerTest, ZeroLengthSpansAreIgnored)
{
    BusyTracker b;
    b.addBusy(5, 5);
    EXPECT_EQ(b.spanCount(), 0u);
    EXPECT_EQ(b.totalBusy(), 0u);
    EXPECT_NEAR(b.utilization(10, 10), 0.0, 1e-9);
}

TEST(BusyTrackerTest, EmptyHistoryProbesZero)
{
    BusyTracker b;
    EXPECT_NEAR(b.utilization(100, 50), 0.0, 1e-9);
    EXPECT_EQ(b.totalBusy(), 0u);
}

TEST(BusyTrackerTest, WindowLargerThanElapsedClampsToTimeZero)
{
    BusyTracker b;
    b.addBusy(0, 10);
    // `now - window` would underflow; the window clamps to [0, 20].
    EXPECT_NEAR(b.utilization(20, 100), 50.0, 1e-9);
}

// Regression (ISSUE 7 wrap audit): the probe path compacts spans no
// *later* probe can see, so a backwards probe silently under-reports
// — the spans it should integrate are gone. That contract violation
// now panics instead of mis-measuring.
TEST(BusyTrackerDeathTest, NonMonotoneProbePanics)
{
    BusyTracker b;
    b.addBusy(0, 1000);
    b.utilization(2000, 100);
    EXPECT_DEATH(b.utilization(1000, 100),
                 "non-monotone utilization probe");
}

TEST(BusyTrackerTest, ResetRestartsProbeTimeline)
{
    BusyTracker b;
    b.addBusy(0, 1000);
    b.utilization(2000, 100);
    b.reset();
    // Benchmark repetitions reset tracker and clock together; probing
    // from zero again is legitimate after a reset.
    b.addBusy(0, 50);
    EXPECT_NEAR(b.utilization(100, 100), 50.0, 1e-9);
}

TEST(BusyTrackerTest, CompactDropsOldSpans)
{
    BusyTracker b;
    b.addBusy(0, 10);
    b.addBusy(100, 110);
    b.compact(50);
    EXPECT_NEAR(b.utilization(110, 10), 100.0, 1e-9);
    EXPECT_EQ(b.totalBusy(), 20u); // total is cumulative
}

// Regression: spans_ grew without bound (compact() had no caller) and
// every probe rescanned the full busy history. The probe path now
// drops spans older than the largest window ever asked for; values
// must match a naive full-history scan while memory stays bounded.
TEST(BusyTrackerTest, ProbePathBoundsMemoryWithoutChangingValues)
{
    BusyTracker b;
    std::vector<std::pair<Nanos, Nanos>> all; // naive reference
    const Nanos period = 10;
    const Nanos window = 1000;
    for (Nanos i = 0; i < 100000; ++i) {
        Nanos t = i * period;
        b.addBusy(t, t + 5);
        all.emplace_back(t, t + 5);
        if (i % 97 == 0) {
            Nanos now = t + period;
            Nanos lo = now > window ? now - window : 0;
            Nanos busy = 0;
            for (auto [s, e] : all) {
                if (e <= lo || s >= now)
                    continue;
                busy += std::min(e, now) - std::max(s, lo);
            }
            double want =
                100.0 * static_cast<double>(busy) / static_cast<double>(now - lo);
            EXPECT_DOUBLE_EQ(b.utilization(now, window), want) << "at i=" << i;
        }
    }
    // 100k spans were added; retained: those inside the largest probe
    // window plus whatever accumulated since the last probe (97 adds).
    EXPECT_LE(b.spanCount(), window / period + 97 + 2);
    EXPECT_EQ(b.totalBusy(), 100000u * 5u);
}

TEST(RateMeterTest, BucketsToRates)
{
    RateMeter m(1_s);
    m.record(100_ms, 10.0);
    m.record(900_ms, 20.0);
    m.record(1500_ms, 5.0);
    auto series = m.series();
    ASSERT_EQ(series.size(), 2u);
    EXPECT_DOUBLE_EQ(series[0].rate, 30.0);
    EXPECT_DOUBLE_EQ(series[1].rate, 5.0);
}

TEST(RingBufferTest, FifoAndOverwrite)
{
    RingBuffer<int> r(3);
    EXPECT_TRUE(r.empty());
    EXPECT_FALSE(r.push(1));
    EXPECT_FALSE(r.push(2));
    EXPECT_FALSE(r.push(3));
    EXPECT_TRUE(r.full());
    EXPECT_TRUE(r.push(4)); // overwrites 1
    EXPECT_EQ(r.front(), 2);
    EXPECT_EQ(r.back(), 4);
    EXPECT_EQ(r.pop(), 2);
    EXPECT_EQ(r.pop(), 3);
    EXPECT_EQ(r.pop(), 4);
    EXPECT_TRUE(r.empty());
}

TEST(RingBufferTest, Snapshot)
{
    RingBuffer<int> r(4);
    for (int i = 0; i < 6; ++i)
        r.push(i);
    auto snap = r.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap.front(), 2);
    EXPECT_EQ(snap.back(), 5);
}

TEST(RingBufferTest, ClearReleasesSlotResources)
{
    // Regression: clear() used to reset head/size only, leaving every
    // dead slot's T alive — a cleared registry ring kept all its
    // feature vectors' heap maps allocated until overwrite. Count live
    // allocations through weak_ptr expiry.
    RingBuffer<std::shared_ptr<int>> r(4);
    std::vector<std::weak_ptr<int>> live;
    for (int i = 0; i < 4; ++i) {
        auto sp = std::make_shared<int>(i);
        live.push_back(sp);
        r.push(std::move(sp));
    }
    for (const auto &w : live)
        EXPECT_FALSE(w.expired());

    r.clear();
    EXPECT_TRUE(r.empty());
    for (const auto &w : live)
        EXPECT_TRUE(w.expired());
}

TEST(RingBufferTest, PopReleasesSlotResources)
{
    RingBuffer<std::shared_ptr<int>> r(2);
    auto sp = std::make_shared<int>(1);
    std::weak_ptr<int> w = sp;
    r.push(std::move(sp));

    std::shared_ptr<int> out = r.pop();
    EXPECT_FALSE(w.expired()); // alive through the returned value only
    out.reset();
    EXPECT_TRUE(w.expired()); // the ring slot holds no residue
}

class RingBufferCapacityTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(RingBufferCapacityTest, KeepsLastCapacityElements)
{
    std::size_t cap = GetParam();
    RingBuffer<std::size_t> r(cap);
    const std::size_t total = 1000;
    for (std::size_t i = 0; i < total; ++i)
        r.push(i);
    ASSERT_EQ(r.size(), std::min(cap, total));
    for (std::size_t i = 0; i < r.size(); ++i)
        EXPECT_EQ(r.at(i), total - r.size() + i);
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingBufferCapacityTest,
                         ::testing::Values(1, 2, 3, 7, 16, 100, 1000,
                                           1024));

TEST(LockFreeMapTest, PutGetAdd)
{
    LockFreeMap m(16);
    std::uint64_t v = 0;
    EXPECT_FALSE(m.get(42, &v));
    m.put(42, 7);
    EXPECT_TRUE(m.get(42, &v));
    EXPECT_EQ(v, 7u);
    m.add(42, 3);
    EXPECT_TRUE(m.get(42, &v));
    EXPECT_EQ(v, 10u);
    m.add(42, -4);
    EXPECT_TRUE(m.get(42, &v));
    EXPECT_EQ(v, 6u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(LockFreeMapTest, ManyKeysAndClear)
{
    LockFreeMap m(64);
    for (std::uint64_t k = 1; k <= 64; ++k)
        m.put(k, k * 10);
    EXPECT_EQ(m.size(), 64u);
    std::uint64_t v = 0;
    for (std::uint64_t k = 1; k <= 64; ++k) {
        ASSERT_TRUE(m.get(k, &v));
        EXPECT_EQ(v, k * 10);
    }
    std::size_t seen = 0;
    m.forEach([&](std::uint64_t, std::uint64_t) { ++seen; });
    EXPECT_EQ(seen, 64u);
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_FALSE(m.get(1, &v));
}

TEST(LockFreeMapTest, ConcurrentIncrements)
{
    // §5.3: instrumentation calls may run on arbitrary kernel threads.
    LockFreeMap m(8);
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m] {
            for (int i = 0; i < kIters; ++i)
                m.add(99, 1);
        });
    }
    for (auto &t : threads)
        t.join();
    std::uint64_t v = 0;
    ASSERT_TRUE(m.get(99, &v));
    EXPECT_EQ(v, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(LockFreeMapTest, ConcurrentDistinctKeys)
{
    LockFreeMap m(128);
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m, t] {
            for (std::uint64_t k = 1; k <= 16; ++k)
                m.put(k * 1000 + t, k);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(m.size(), 128u);
}

TEST(StatusTest, CodesAndMessages)
{
    Status ok;
    EXPECT_TRUE(ok.isOk());
    EXPECT_EQ(ok.toString(), "OK");

    Status err(Code::NotFound, "missing thing");
    EXPECT_FALSE(err.isOk());
    EXPECT_EQ(err.code(), Code::NotFound);
    EXPECT_EQ(err.toString(), "NotFound: missing thing");
}

TEST(ResultTest, ValueAndError)
{
    Result<int> good(41);
    ASSERT_TRUE(good.isOk());
    EXPECT_EQ(good.value(), 41);

    Result<int> bad(Status(Code::Internal, "boom"));
    EXPECT_FALSE(bad.isOk());
    EXPECT_EQ(bad.status().code(), Code::Internal);
}

} // namespace
} // namespace lake
