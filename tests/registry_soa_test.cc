// Tests for the zero-copy SoA capture→score data plane (DESIGN.md
// §12): legacy-plane equivalence (the shim contract), slot lifecycle
// under window wrap / truncate while batch views are pinned, strided
// MatrixView bit-identity against the dense GEMM path, multi-threaded
// column capture (the TSan sweep target of bench/sanitize.sh), and the
// LAKE_SOA_* env knob parse-safety.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "base/time.h"
#include "ml/knn.h"
#include "ml/mlp.h"
#include "registry/manager.h"
#include "registry/registry.h"
#include "registry/schema.h"
#include "registry/scoreserver.h"
#include "registry/soa.h"
#include "shm/arena.h"
#include "storage/e2e.h"
#include "storage/linnos.h"
#include "storage/trace.h"

namespace lake::registry {
namespace {

/** A registry with an attached SoaStore carved from its own arena. */
struct SoaRig
{
    SoaRig(Schema schema, std::size_t window, std::size_t slack = 8)
        : arena(8ull << 20),
          reg("sda1", "bio_latency_prediction", std::move(schema),
              window)
    {
        SoaConfig cfg;
        cfg.enabled = true;
        cfg.slack = slack;
        // The store keeps a reference to the schema: hand it the
        // registry's own copy, exactly as the manager does.
        std::unique_ptr<SoaStore> store =
            SoaStore::create(reg.schema(), window, cfg, arena);
        EXPECT_NE(store, nullptr);
        reg.attachSoa(std::move(store));
    }

    shm::ShmArena arena;
    Registry reg;
};

Schema
historySchema()
{
    Schema s;
    s.add("pend_ios");
    s.add("lat", 8, 3);
    return s;
}

/** Asserts two getFeatures() dumps are bit-for-bit interchangeable. */
void
expectSameVectors(const std::vector<FeatureVector> &legacy,
                  const std::vector<FeatureVector> &soa)
{
    ASSERT_EQ(legacy.size(), soa.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_EQ(legacy[i].ts_begin, soa[i].ts_begin) << "fv " << i;
        EXPECT_EQ(legacy[i].ts_end, soa[i].ts_end) << "fv " << i;
        EXPECT_EQ(legacy[i].values, soa[i].values) << "fv " << i;
    }
}

TEST(SoaEquivalenceTest, CaptureCommitMaterializeMatchesLegacy)
{
    Registry legacy("sda1", "sys", historySchema(), 8);
    SoaRig soa(historySchema(), 8);

    for (Registry *r : {&legacy, &soa.reg}) {
        r->beginFvCapture(100);
        r->captureFeature("pend_ios", 5);
        r->captureFeature("lat", 250);
        r->commitFvCapture(110);
        // Second vector: history lane 1 must inherit 250, the pending
        // counter must carry forward and keep incrementing.
        r->captureFeatureIncr("pend_ios", 2);
        r->captureFeature("lat", 400);
        r->commitFvCapture(120);
    }
    std::vector<FeatureVector> a = legacy.getFeatures();
    std::vector<FeatureVector> b = soa.reg.getFeatures();
    expectSameVectors(a, b);
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b[1].get("pend_ios"), 7u);
    EXPECT_EQ(b[1].values.at(featureKey("lat"))[1], 250u);
}

TEST(SoaEquivalenceTest, ForwardRestampKeepsFeaturesOnBothPlanes)
{
    Registry legacy("sda1", "sys", historySchema(), 8);
    SoaRig soa(historySchema(), 8);
    for (Registry *r : {&legacy, &soa.reg}) {
        r->beginFvCapture(10);
        r->captureFeature("pend_ios", 3);
        r->beginFvCapture(50); // re-arm, keep features
        r->captureFeature("lat", 700);
        r->commitFvCapture(60);
    }
    expectSameVectors(legacy.getFeatures(), soa.reg.getFeatures());
    std::vector<FeatureVector> got = soa.reg.getFeatures();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].ts_begin, 50u);
    EXPECT_EQ(got[0].get("pend_ios"), 3u);
}

// The randomized property pin: any interleaving of captures (by key
// and by column), increments, forward re-stamps, commits, wraps, and
// truncates reads back identically from the two planes.
TEST(SoaEquivalenceTest, RandomizedOpStreamEquivalence)
{
    Registry legacy("sda1", "sys", historySchema(), 8);
    SoaRig soa(historySchema(), 8);
    Rng rng(1234);

    Nanos ts = 0;
    legacy.beginFvCapture(ts);
    soa.reg.beginFvCapture(ts);
    std::vector<Nanos> commits;
    for (int op = 0; op < 600; ++op) {
        int what = static_cast<int>(rng.uniformInt(0, 9));
        std::uint64_t v = rng.uniformInt(0, 5000);
        switch (what) {
        case 0:
        case 1:
            legacy.captureFeature("pend_ios", v);
            soa.reg.captureFeature("pend_ios", v);
            break;
        case 2:
        case 3:
            legacy.captureFeature("lat", v);
            soa.reg.captureFeature("lat", v);
            break;
        case 4:
            legacy.captureFeatureIncr("pend_ios",
                                      static_cast<std::int64_t>(v));
            soa.reg.captureFeatureIncr("pend_ios",
                                       static_cast<std::int64_t>(v));
            break;
        case 5:
            legacy.captureFeatureCol(1, v);
            soa.reg.captureFeatureCol(1, v);
            break;
        case 6:
            legacy.captureFeatureIncrCol(0,
                                         static_cast<std::int64_t>(v));
            soa.reg.captureFeatureIncrCol(
                0, static_cast<std::int64_t>(v));
            break;
        case 7: // forward re-stamp
            ts += rng.uniformInt(1, 50);
            legacy.beginFvCapture(ts);
            soa.reg.beginFvCapture(ts);
            break;
        case 8:
            ts += rng.uniformInt(1, 50);
            legacy.commitFvCapture(ts);
            soa.reg.commitFvCapture(ts);
            commits.push_back(ts);
            expectSameVectors(legacy.getFeatures(),
                              soa.reg.getFeatures());
            break;
        case 9:
            if (!commits.empty() && rng.uniformInt(0, 3) == 0) {
                Nanos cut =
                    commits[rng.uniformInt(0, commits.size() - 1)];
                legacy.truncateFeatures(cut);
                soa.reg.truncateFeatures(cut);
                expectSameVectors(legacy.getFeatures(),
                                  soa.reg.getFeatures());
            }
            break;
        }
        EXPECT_EQ(legacy.pendingCount(), soa.reg.pendingCount());
    }
    // Timestamp-indexed retrieval agrees too.
    for (Nanos t : commits)
        expectSameVectors(legacy.getFeatures(t), soa.reg.getFeatures(t));
}

// Column captures from many threads while one capture is open — the
// relaxed-atomic lanes plus the ever-captured bitmap are what
// `bench/sanitize.sh thread -L soa` sweeps here.
TEST(SoaConcurrencyTest, ColumnCaptureFromManyThreads)
{
    Schema s;
    for (int c = 0; c < 4; ++c)
        s.add("own" + std::to_string(c));
    s.add("shared");
    SoaRig soa(std::move(s), 8);
    soa.reg.beginFvCapture(0);

    constexpr int kThreads = 4;
    constexpr std::uint64_t kIters = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (std::uint64_t i = 1; i <= kIters; ++i) {
                soa.reg.captureFeatureCol(static_cast<std::uint32_t>(t),
                                          i);
                soa.reg.captureFeatureIncrCol(kThreads, 1);
            }
        });
    for (std::thread &th : threads)
        th.join();
    soa.reg.commitFvCapture(10);

    std::vector<FeatureVector> got = soa.reg.getFeatures();
    ASSERT_EQ(got.size(), 1u);
    // Each "own" column was last written with kIters by its one owner;
    // the shared counter saw every increment exactly once.
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(got[0].get("own" + std::to_string(t)), kIters);
    EXPECT_EQ(got[0].get("shared"), kThreads * kIters);
}

// Satellite 6 regression: a window wrap must recycle sealed slots
// without invalidating an in-flight batch view — recycling defers
// (Retired) until the last view unpins.
TEST(SoaViewTest, WindowWrapDefersRecycleBehindPinnedView)
{
    Schema s;
    s.add("x");
    SoaRig soa(std::move(s), 4, /*slack=*/6);
    soa.reg.beginFvCapture(0);
    for (std::uint64_t i = 0; i < 4; ++i) {
        soa.reg.captureFeature("x", 100 + i);
        soa.reg.commitFvCapture(10 * (i + 1));
    }

    FvBatchView view = soa.reg.batchView();
    ASSERT_EQ(view.size(), 4u);
    std::vector<ml::MatrixView> before = view.matrixViews();

    // Wrap the whole window while the view is pinned.
    for (std::uint64_t i = 4; i < 8; ++i) {
        soa.reg.captureFeature("x", 100 + i);
        soa.reg.commitFvCapture(10 * (i + 1));
    }
    EXPECT_GT(soa.reg.soa()->retiredCount(), 0u);

    // The pinned rows still read their original bytes — scalar lanes,
    // timestamps, and the float rows a concurrent GEMM would consume.
    for (std::size_t r = 0; r < 4; ++r) {
        EXPECT_EQ(view.get(r, featureKey("x")), 100 + r);
        EXPECT_EQ(view.tsEnd(r), 10 * (r + 1));
    }
    std::vector<ml::MatrixView> after = view.matrixViews();
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t b = 0; b < before.size(); ++b) {
        ASSERT_EQ(before[b].rows(), after[b].rows());
        for (std::size_t r = 0; r < before[b].rows(); ++r)
            EXPECT_EQ(std::memcmp(before[b].row(r), after[b].row(r),
                                  before[b].cols() * sizeof(float)),
                      0);
    }
    // The new window reads the new values through a fresh view.
    FvBatchView fresh = soa.reg.batchView();
    ASSERT_EQ(fresh.size(), 4u);
    for (std::size_t r = 0; r < 4; ++r)
        EXPECT_EQ(fresh.get(r, featureKey("x")), 104 + r);

    // Dropping the views frees every deferred slot.
    fresh = FvBatchView();
    view = FvBatchView();
    EXPECT_EQ(soa.reg.soa()->retiredCount(), 0u);
}

TEST(SoaViewTest, TruncateDefersRecycleBehindPinnedView)
{
    Schema s;
    s.add("x"); // no history: truncate(nullopt) drops everything
    SoaRig soa(std::move(s), 8);
    soa.reg.beginFvCapture(0);
    for (std::uint64_t i = 0; i < 5; ++i) {
        soa.reg.captureFeature("x", i);
        soa.reg.commitFvCapture(10 * (i + 1));
    }
    FvBatchView view = soa.reg.batchView();
    soa.reg.truncateFeatures();
    EXPECT_EQ(soa.reg.pendingCount(), 0u);
    EXPECT_GT(soa.reg.soa()->retiredCount(), 0u);
    for (std::size_t r = 0; r < 5; ++r)
        EXPECT_EQ(view.get(r, featureKey("x")), r);
    view = FvBatchView();
    EXPECT_EQ(soa.reg.soa()->retiredCount(), 0u);
    // The store keeps working after the deferred free.
    soa.reg.captureFeature("x", 99);
    soa.reg.commitFvCapture(100);
    EXPECT_EQ(soa.reg.getFeatures()[0].get("x"), 99u);
}

// The strided zero-copy windows must be bit-identical inputs to the
// GEMM/kNN substrate: forward over matrixViews() == forward over a
// dense gathered copy, float for float.
TEST(SoaViewTest, MatrixViewsBitIdenticalToDenseCompute)
{
    Schema s;
    for (int c = 0; c < 5; ++c)
        s.add("f" + std::to_string(c));
    SoaRig soa(std::move(s), 16);
    soa.reg.beginFvCapture(0);
    Rng rng(7);
    const std::size_t n = 12;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::uint32_t c = 0; c < 5; ++c)
            soa.reg.captureFeatureCol(c, rng.uniformInt(0, 999));
        soa.reg.commitFvCapture(10 * (i + 1));
    }
    FvBatchView view = soa.reg.batchView();
    std::vector<ml::MatrixView> views = view.matrixViews();

    // Dense gather (what the legacy pack step would have staged).
    ml::Matrix dense(n, 5);
    std::size_t r = 0;
    for (const ml::MatrixView &mv : views) {
        ASSERT_EQ(mv.cols(), 5u);
        ASSERT_GE(mv.stride(), mv.cols());
        for (std::size_t vr = 0; vr < mv.rows(); ++vr, ++r)
            std::copy(mv.row(vr), mv.row(vr) + 5, dense.row(r));
    }
    ASSERT_EQ(r, n);

    ml::MlpConfig mc;
    mc.input = 5;
    mc.hidden = {16};
    mc.output = 2;
    Rng mrng(42);
    ml::Mlp mlp(mc, mrng);
    ml::Matrix from_views = mlp.forward(views);
    ml::Matrix from_dense = mlp.forward(dense);
    ASSERT_EQ(from_views.rows(), from_dense.rows());
    EXPECT_EQ(std::memcmp(from_views.data(), from_dense.data(),
                          from_dense.size() * sizeof(float)),
              0);

    ml::Knn knn(5, 3);
    Rng krng(9);
    for (int p = 0; p < 64; ++p) {
        float ref[5];
        for (float &f : ref)
            f = static_cast<float>(krng.uniform(0.0, 999.0));
        knn.add(ref, p % 2);
    }
    EXPECT_EQ(knn.classifyBatch(ml::MatrixView(dense.data(), n, 5, 5)),
              knn.classifyBatch(dense.data(), n));
    std::vector<int> strided;
    for (const ml::MatrixView &mv : views) {
        std::vector<int> part = knn.classifyBatch(mv);
        strided.insert(strided.end(), part.begin(), part.end());
    }
    EXPECT_EQ(strided, knn.classifyBatch(dense.data(), n));
}

TEST(SoaViewTest, SelectRepinsRowSubsetInOrder)
{
    Schema s;
    s.add("x");
    SoaRig soa(std::move(s), 8);
    soa.reg.beginFvCapture(0);
    for (std::uint64_t i = 0; i < 6; ++i) {
        soa.reg.captureFeature("x", i);
        soa.reg.commitFvCapture(10 * (i + 1));
    }
    FvBatchView view = soa.reg.batchView();
    FvBatchView sub = view.select({4, 1, 1});
    ASSERT_EQ(sub.size(), 3u);
    EXPECT_EQ(sub.get(0, featureKey("x")), 4u);
    EXPECT_EQ(sub.get(1, featureKey("x")), 1u);
    EXPECT_EQ(sub.get(2, featureKey("x")), 1u);
    // The subset outlives the parent view.
    view = FvBatchView();
    EXPECT_EQ(sub.tsEnd(0), 50u);
    std::vector<FeatureVector> mat = sub.materialize();
    ASSERT_EQ(mat.size(), 3u);
    EXPECT_EQ(mat[2].get("x"), 1u);
}

// scoreFeatures(view) must agree with the legacy batch entry point:
// through the registered view classifier when one exists, and through
// the materializing shim when only a legacy classifier is installed.
TEST(SoaScoreTest, ViewScoringMatchesLegacyScoring)
{
    auto build = [](SoaRig &soa) {
        soa.reg.beginFvCapture(0);
        Rng rng(21);
        for (std::size_t i = 0; i < 10; ++i) {
            soa.reg.captureFeatureCol(0, rng.uniformInt(0, 99));
            soa.reg.captureFeatureCol(1, rng.uniformInt(0, 99));
            soa.reg.commitFvCapture(10 * (i + 1));
        }
    };
    Schema s;
    s.add("a");
    s.add("b");
    Schema s2 = s;

    Classifier legacy_fn =
        [](const std::vector<FeatureVector> &fvs) {
            std::vector<float> out;
            for (const FeatureVector &fv : fvs)
                out.push_back(static_cast<float>(fv.get("a")) +
                              2.0f * static_cast<float>(fv.get("b")));
            return out;
        };
    ViewClassifier view_fn = [](const FvBatchView &v) {
        std::vector<float> out;
        for (std::size_t r = 0; r < v.size(); ++r)
            out.push_back(
                static_cast<float>(v.value(r, 0)) +
                2.0f * static_cast<float>(v.value(r, 1)));
        return out;
    };

    SoaRig both(std::move(s), 16);
    ASSERT_TRUE(
        both.reg.registerClassifier(Arch::Cpu, legacy_fn).isOk());
    ASSERT_TRUE(
        both.reg.registerViewClassifier(Arch::Cpu, view_fn).isOk());
    build(both);
    std::vector<float> via_view =
        both.reg.scoreFeatures(both.reg.batchView(), 200);
    std::vector<float> via_legacy =
        both.reg.scoreFeatures(both.reg.getFeatures(), 200);
    EXPECT_EQ(via_view, via_legacy);

    // Legacy-only registry: the view overload materializes (the shim).
    SoaRig shim(std::move(s2), 16);
    ASSERT_TRUE(
        shim.reg.registerClassifier(Arch::Cpu, legacy_fn).isOk());
    build(shim);
    EXPECT_EQ(shim.reg.scoreFeatures(shim.reg.batchView(), 200),
              via_legacy);
}

// submitView through the ScoreServer: single-row views coalesce across
// registries into one dispatch, every callback sees the full batch
// depth, and the scores match the synchronous path.
TEST(SoaScoreTest, ScoreServerCoalescesSubmittedViews)
{
    Clock clock;
    shm::ShmArena arena(8ull << 20);
    RegistryManager mgr(clock);
    SoaConfig soa_cfg;
    soa_cfg.enabled = true;
    ASSERT_TRUE(mgr.enableSoa(soa_cfg, &arena).isOk());

    ViewClassifier view_fn = [](const FvBatchView &v) {
        std::vector<float> out;
        for (std::size_t r = 0; r < v.size(); ++r)
            out.push_back(static_cast<float>(v.value(r, 0)));
        return out;
    };
    Schema s;
    s.add("x");
    for (const char *name : {"sda1", "sdb1"}) {
        ASSERT_TRUE(
            mgr.createRegistry(name, "sys", s, 64).isOk());
        ASSERT_TRUE(mgr.find(name, "sys")
                        ->registerViewClassifier(Arch::Cpu, view_fn)
                        .isOk());
    }
    ScoringConfig cfg;
    cfg.enabled = true;
    cfg.max_batch = 8;
    cfg.queue_capacity = 32;
    ASSERT_TRUE(mgr.enableScoring(cfg).isOk());

    std::vector<float> scores;
    std::vector<std::size_t> batches;
    for (std::uint64_t i = 0; i < 8; ++i) {
        const char *name = (i % 2) ? "sdb1" : "sda1";
        Registry *reg = mgr.find(name, "sys");
        if (!reg->captureOpen())
            reg->beginFvCapture(clock.now());
        reg->captureFeatureCol(0, 100 + i);
        reg->commitFvCapture(clock.now());
        Status st = mgr.scorer()->submitView(
            name, "sys", reg->tailView(1), 0,
            [&](const ScoreResult &r) {
                ASSERT_TRUE(r.status.isOk());
                ASSERT_EQ(r.scores.size(), 1u);
                scores.push_back(r.scores[0]);
                batches.push_back(r.batch);
            });
        ASSERT_TRUE(st.isOk());
        clock.advance(1_us);
    }
    // The 8th submission hit max_batch and flushed the whole group;
    // callbacks run in drain order (requests grouped per registry), so
    // compare as a set: every vector scored once, with its own value,
    // and every callback saw the full coalesced batch depth.
    ASSERT_EQ(scores.size(), 8u);
    std::sort(scores.begin(), scores.end());
    for (std::uint64_t i = 0; i < 8; ++i) {
        EXPECT_FLOAT_EQ(scores[i], 100.0f + static_cast<float>(i));
        EXPECT_EQ(batches[i], 8u);
    }
}

TEST(SoaStoreTest, ColumnsAreCacheLineIsolated)
{
    shm::ShmArena arena(4ull << 20);
    Schema s;
    s.add("a");
    s.add("hist", 8, 4);
    s.add("b");
    SoaConfig cfg;
    cfg.enabled = true;
    std::unique_ptr<SoaStore> store = SoaStore::create(s, 8, cfg, arena);
    ASSERT_NE(store, nullptr);

    auto line = [](const void *p) {
        return reinterpret_cast<std::uintptr_t>(p) / 64;
    };
    // Every column region starts on its own cache line, and no two
    // columns' lanes ever share one (concurrent captures of different
    // features never false-share).
    for (std::uint32_t c = 0; c < 3; ++c)
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(
                      store->laneAddr(c, 0, 0)) %
                      64,
                  0u)
            << "column " << c;
    const std::uint32_t entries[3] = {1, 4, 1};
    for (std::uint32_t c = 0; c + 1 < 3; ++c) {
        const std::uint64_t *last = store->laneAddr(
            c, entries[c] - 1,
            static_cast<std::uint32_t>(store->capacity() - 1));
        const std::uint64_t *next = store->laneAddr(c + 1, 0, 0);
        EXPECT_LT(line(last), line(next));
    }
}

TEST(SoaStoreTest, CreateFailsCleanlyWhenArenaTooSmall)
{
    shm::ShmArena tiny(4096);
    Schema s;
    s.add("hist", 8, 64);
    SoaConfig cfg;
    cfg.enabled = true;
    cfg.slack = 64;
    EXPECT_EQ(SoaStore::create(s, 4096, cfg, tiny), nullptr);
}

TEST(SoaConfigTest, EnvOverridesParseSafely)
{
    SoaConfig cfg;
    cfg.slack = 8;

    ::setenv("LAKE_SOA", "1", 1);
    ::setenv("LAKE_SOA_SLACK", "16", 1);
    cfg.applyEnv();
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.slack, 16u);

    // Garbage falls back to the value already in force.
    ::setenv("LAKE_SOA", "banana", 1);
    ::setenv("LAKE_SOA_SLACK", "lots", 1);
    cfg.applyEnv();
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.slack, 16u);

    ::setenv("LAKE_SOA", "0", 1);
    cfg.applyEnv();
    EXPECT_FALSE(cfg.enabled);

    ::unsetenv("LAKE_SOA");
    ::unsetenv("LAKE_SOA_SLACK");
    cfg.enabled = true;
    cfg.applyEnv();
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.slack, 16u);
}

// The e2e pipeline is the integration pin: the same trace through the
// same trained model must produce identical virtual-time results with
// the SoA plane on and off (the figure benches' byte-identity rule).
TEST(SoaE2eTest, PipelineResultsIdenticalWithPlaneOnAndOff)
{
    Rng rng(31);
    storage::LinnosDataset data = storage::collectLinnosData(
        storage::TraceSpec::azure().rerated(3.0),
        storage::NvmeSpec::samsung980Pro(), 200_ms, 0.80, 7);
    ml::Mlp net = storage::trainLinnosModel(data, 0, 1, 0.05f, rng);

    storage::E2eConfig cfg;
    cfg.mode = storage::E2eMode::LakeNn;
    cfg.model = &net;
    cfg.duration = 200_ms;
    cfg.threshold_us = data.threshold_us;
    std::vector<storage::TraceSpec> traces = {
        storage::TraceSpec::azure().rerated(3.0),
        storage::TraceSpec::bingI().rerated(3.0),
        storage::TraceSpec::cosmos()};

    storage::E2eResult off = storage::runE2e(traces, cfg);
    cfg.soa.enabled = true;
    storage::E2eResult on = storage::runE2e(traces, cfg);

    EXPECT_EQ(off.reads, on.reads);
    EXPECT_EQ(off.writes, on.writes);
    EXPECT_EQ(off.rerouted, on.rerouted);
    EXPECT_EQ(off.inference_batches, on.inference_batches);
    EXPECT_EQ(off.gpu_batches, on.gpu_batches);
    EXPECT_DOUBLE_EQ(off.avg_read_lat_us, on.avg_read_lat_us);
    EXPECT_DOUBLE_EQ(off.p95_read_lat_us, on.p95_read_lat_us);
    EXPECT_DOUBLE_EQ(off.p99_read_lat_us, on.p99_read_lat_us);
    EXPECT_DOUBLE_EQ(off.avg_batch, on.avg_batch);
}

} // namespace
} // namespace lake::registry
