// Tests for the in-kernel feature registry (Table 1 semantics).

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "base/time.h"
#include "registry/manager.h"
#include "registry/registry.h"
#include "registry/schema.h"

namespace lake::registry {
namespace {

TEST(SchemaTest, DeclarationAndLookup)
{
    Schema s;
    s.add("pend_ios").add("io_lat", 4, 4);
    EXPECT_EQ(s.featureCount(), 2u);
    EXPECT_TRUE(s.hasHistory());

    const FeatureSpec *spec = s.find(featureKey("io_lat"));
    ASSERT_NE(spec, nullptr);
    EXPECT_EQ(spec->size, 4u);
    EXPECT_EQ(spec->entries, 4u);
    EXPECT_EQ(s.find(featureKey("nope")), nullptr);
}

TEST(SchemaTest, KeysAreStableAndNonZero)
{
    EXPECT_EQ(featureKey("pend_ios"), featureKey("pend_ios"));
    EXPECT_NE(featureKey("pend_ios"), featureKey("io_lat"));
    EXPECT_NE(featureKey(""), 0u);
}

class RegistryTest : public ::testing::Test
{
  protected:
    RegistryTest()
        : reg_("sda1", "bio_latency_prediction",
               Schema().add("pend_ios").add("lat", 8, 3), 8)
    {
    }

    static Schema
    makeSchema()
    {
        Schema s;
        s.add("pend_ios");
        s.add("lat", 8, 3);
        return s;
    }

    Registry reg_;
};

TEST_F(RegistryTest, CaptureCommitRead)
{
    reg_.beginFvCapture(100);
    reg_.captureFeature("pend_ios", 5);
    reg_.captureFeature("lat", 250);
    reg_.commitFvCapture(110);

    auto fvs = reg_.getFeatures();
    ASSERT_EQ(fvs.size(), 1u);
    EXPECT_EQ(fvs[0].ts_begin, 100u);
    EXPECT_EQ(fvs[0].ts_end, 110u);
    EXPECT_EQ(fvs[0].get("pend_ios"), 5u);
    EXPECT_EQ(fvs[0].get("lat"), 250u);
}

TEST_F(RegistryTest, IncrementalCountersPersistAcrossCommits)
{
    reg_.beginFvCapture(0);
    reg_.captureFeatureIncr("pend_ios", 1);
    reg_.captureFeatureIncr("pend_ios", 1);
    reg_.commitFvCapture(10);
    reg_.captureFeatureIncr("pend_ios", -1);
    reg_.commitFvCapture(20);

    auto fvs = reg_.getFeatures();
    ASSERT_EQ(fvs.size(), 2u);
    EXPECT_EQ(fvs[0].get("pend_ios"), 2u);
    EXPECT_EQ(fvs[1].get("pend_ios"), 1u);
}

TEST_F(RegistryTest, HistoryEntriesInherit)
{
    reg_.beginFvCapture(0);
    reg_.captureFeature("lat", 100);
    reg_.commitFvCapture(1);
    reg_.captureFeature("lat", 200);
    reg_.commitFvCapture(2);
    reg_.captureFeature("lat", 300);
    reg_.commitFvCapture(3);

    auto fvs = reg_.getFeatures();
    ASSERT_EQ(fvs.size(), 3u);
    // §5.2: index 0 most recent, 1..N-1 from previous vectors.
    const auto &latest = fvs[2].values.at(featureKey("lat"));
    ASSERT_EQ(latest.size(), 3u);
    EXPECT_EQ(latest[0], 300u);
    EXPECT_EQ(latest[1], 200u);
    EXPECT_EQ(latest[2], 100u);
}

TEST_F(RegistryTest, TimestampQueryFindsContainingVector)
{
    reg_.beginFvCapture(100);
    reg_.captureFeature("pend_ios", 1);
    reg_.commitFvCapture(200);
    reg_.captureFeature("pend_ios", 2);
    reg_.commitFvCapture(300);

    auto hit = reg_.getFeatures(150);
    ASSERT_EQ(hit.size(), 1u);
    EXPECT_EQ(hit[0].get("pend_ios"), 1u);

    auto hit2 = reg_.getFeatures(250);
    ASSERT_EQ(hit2.size(), 1u);
    EXPECT_EQ(hit2[0].get("pend_ios"), 2u);

    EXPECT_TRUE(reg_.getFeatures(99).empty());
}

TEST_F(RegistryTest, TruncatePreservesNewestWithHistory)
{
    reg_.beginFvCapture(0);
    for (int i = 0; i < 4; ++i) {
        reg_.captureFeature("lat", 100 + i);
        reg_.commitFvCapture(10 * (i + 1));
    }
    ASSERT_EQ(reg_.pendingCount(), 4u);

    // §5.4: with history features, the newest vector survives so the
    // next commit can populate its historical entries.
    reg_.truncateFeatures();
    ASSERT_EQ(reg_.pendingCount(), 1u);
    EXPECT_EQ(reg_.getFeatures()[0].get("lat"), 103u);

    // And history still chains through the survivor.
    reg_.captureFeature("lat", 200);
    reg_.commitFvCapture(100);
    auto fvs = reg_.getFeatures();
    const auto &hist = fvs.back().values.at(featureKey("lat"));
    EXPECT_EQ(hist[0], 200u);
    EXPECT_EQ(hist[1], 103u);
}

TEST(RegistryNoHistoryTest, TruncateDropsEverything)
{
    Registry reg("r", "s", Schema().add("x"), 4);
    reg.beginFvCapture(0);
    reg.captureFeature("x", 1);
    reg.commitFvCapture(1);
    reg.truncateFeatures();
    EXPECT_EQ(reg.pendingCount(), 0u);
}

TEST(RegistryNoHistoryTest, TruncateByTimestamp)
{
    Registry reg("r", "s", Schema().add("x"), 8);
    reg.beginFvCapture(0);
    for (int i = 1; i <= 4; ++i) {
        reg.captureFeature("x", i);
        reg.commitFvCapture(i * 10);
    }
    reg.truncateFeatures(Nanos{25});
    auto fvs = reg.getFeatures();
    ASSERT_EQ(fvs.size(), 2u); // ts_end 30 and 40 survive
    EXPECT_EQ(fvs[0].get("x"), 3u);
}

TEST(RegistryRingTest, WindowOverwritesOldest)
{
    Registry reg("r", "s", Schema().add("x"), 2);
    reg.beginFvCapture(0);
    for (int i = 1; i <= 5; ++i) {
        reg.captureFeature("x", i);
        reg.commitFvCapture(i);
    }
    auto fvs = reg.getFeatures();
    ASSERT_EQ(fvs.size(), 2u);
    EXPECT_EQ(fvs[0].get("x"), 4u);
    EXPECT_EQ(fvs[1].get("x"), 5u);
}

TEST(RegistryScoreTest, DispatchesByPolicy)
{
    Registry reg("r", "s", Schema().add("x"), 8);
    int cpu_calls = 0, gpu_calls = 0;
    reg.registerClassifier(
        Arch::Cpu, [&](const std::vector<FeatureVector> &fvs) {
            ++cpu_calls;
            return std::vector<float>(fvs.size(), 0.0f);
        });
    reg.registerClassifier(
        Arch::Gpu, [&](const std::vector<FeatureVector> &fvs) {
            ++gpu_calls;
            return std::vector<float>(fvs.size(), 1.0f);
        });
    reg.registerPolicy(std::make_unique<policy::BatchThresholdPolicy>(4));

    std::vector<FeatureVector> small(2), big(8);
    reg.scoreFeatures(small, 0);
    EXPECT_EQ(cpu_calls, 1);
    EXPECT_EQ(reg.lastEngine(), policy::Engine::Cpu);
    reg.scoreFeatures(big, 0);
    EXPECT_EQ(gpu_calls, 1);
    EXPECT_EQ(reg.lastEngine(), policy::Engine::Gpu);
}

TEST(RegistryScoreTest, FallsBackToCpuWithoutGpuClassifier)
{
    Registry reg("r", "s", Schema().add("x"), 8);
    int cpu_calls = 0;
    reg.registerClassifier(
        Arch::Cpu, [&](const std::vector<FeatureVector> &fvs) {
            ++cpu_calls;
            return std::vector<float>(fvs.size(), 0.0f);
        });
    reg.registerPolicy(std::make_unique<policy::AlwaysGpuPolicy>());
    std::vector<FeatureVector> fvs(4);
    reg.scoreFeatures(fvs, 0);
    EXPECT_EQ(cpu_calls, 1);
    EXPECT_EQ(reg.lastEngine(), policy::Engine::Cpu);
}

TEST(RegistryScoreTest, EmptyBatchIsNoop)
{
    Registry reg("r", "s", Schema().add("x"), 8);
    EXPECT_TRUE(reg.scoreFeatures({}, 0).empty());
}

TEST(RegistryConcurrencyTest, CaptureFromManyThreads)
{
    // §5.3: capture calls may come from arbitrary kernel threads while
    // a capture is open.
    Registry reg("r", "s", Schema().add("ctr").add("x"), 4);
    reg.beginFvCapture(0);
    constexpr int kThreads = 8, kIters = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            for (int i = 0; i < kIters; ++i)
                reg.captureFeatureIncr("ctr", 1);
        });
    }
    for (auto &t : threads)
        t.join();
    reg.commitFvCapture(1);
    EXPECT_EQ(reg.getFeatures()[0].get("ctr"),
              static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ManagerTest, LifecycleAndFacade)
{
    Clock clock;
    RegistryManager mgr(clock);

    Schema schema;
    schema.add("pend_ios");
    EXPECT_TRUE(
        create_registry(mgr, "sda1", "bio", std::move(schema), 16).isOk());
    EXPECT_EQ(mgr.registryCount(), 1u);
    // Duplicate creation fails.
    Schema schema2;
    schema2.add("pend_ios");
    EXPECT_EQ(create_registry(mgr, "sda1", "bio", std::move(schema2), 16)
                  .code(),
              Code::AlreadyExists);

    // The Listing 4/5 flow through the facade.
    begin_fv_capture(mgr, "sda1", "bio", 0);
    capture_feature_incr(mgr, "sda1", "bio", "pend_ios", 1);
    commit_fv_capture(mgr, "sda1", "bio", 5);
    auto fvs = get_features(mgr, "sda1", "bio", std::nullopt);
    ASSERT_EQ(fvs.size(), 1u);
    EXPECT_EQ(fvs[0].get("pend_ios"), 1u);
    truncate_features(mgr, "sda1", "bio", std::nullopt);
    EXPECT_TRUE(get_features(mgr, "sda1", "bio", std::nullopt).empty());

    EXPECT_TRUE(destroy_registry(mgr, "sda1", "bio").isOk());
    EXPECT_EQ(destroy_registry(mgr, "sda1", "bio").code(),
              Code::NotFound);
}

TEST(ModelStoreTest, LifecycleAndCosts)
{
    Clock clock;
    ModelStore store(clock);

    EXPECT_TRUE(store.createModel("/m/lat.nn").isOk());
    EXPECT_EQ(store.createModel("/m/lat.nn").code(), Code::AlreadyExists);
    EXPECT_TRUE(store.exists("/m/lat.nn"));

    std::vector<std::uint8_t> blob = {1, 2, 3, 4};
    EXPECT_TRUE(store.updateModel("/m/lat.nn", blob).isOk());
    // Not loaded into memory until load_model.
    EXPECT_EQ(store.inMemory("/m/lat.nn"), nullptr);
    EXPECT_TRUE(store.loadModel("/m/lat.nn").isOk());
    ASSERT_NE(store.inMemory("/m/lat.nn"), nullptr);
    EXPECT_EQ(*store.inMemory("/m/lat.nn"), blob);

    // Durable operations charge file-system-scale time.
    EXPECT_GE(clock.now(), 3 * ModelStore::kFsOpCost);

    // updateModel leaves the in-memory image serving old weights.
    std::vector<std::uint8_t> blob2 = {9, 9};
    EXPECT_TRUE(store.updateModel("/m/lat.nn", blob2).isOk());
    EXPECT_EQ(*store.inMemory("/m/lat.nn"), blob);
    EXPECT_TRUE(store.loadModel("/m/lat.nn").isOk());
    EXPECT_EQ(*store.inMemory("/m/lat.nn"), blob2);

    EXPECT_TRUE(store.deleteModel("/m/lat.nn").isOk());
    EXPECT_FALSE(store.exists("/m/lat.nn"));
    EXPECT_EQ(store.loadModel("/m/lat.nn").code(), Code::NotFound);
}

} // namespace
} // namespace lake::registry
