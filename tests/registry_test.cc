// Tests for the in-kernel feature registry (Table 1 semantics) and the
// async batched scoring service (DESIGN.md §7).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "base/time.h"
#include "registry/manager.h"
#include "registry/registry.h"
#include "registry/schema.h"
#include "registry/scoreserver.h"

namespace lake::registry {
namespace {

TEST(SchemaTest, DeclarationAndLookup)
{
    Schema s;
    s.add("pend_ios").add("io_lat", 4, 4);
    EXPECT_EQ(s.featureCount(), 2u);
    EXPECT_TRUE(s.hasHistory());

    const FeatureSpec *spec = s.find(featureKey("io_lat"));
    ASSERT_NE(spec, nullptr);
    EXPECT_EQ(spec->size, 4u);
    EXPECT_EQ(spec->entries, 4u);
    EXPECT_EQ(s.find(featureKey("nope")), nullptr);
}

TEST(SchemaTest, KeysAreStableAndNonZero)
{
    EXPECT_EQ(featureKey("pend_ios"), featureKey("pend_ios"));
    EXPECT_NE(featureKey("pend_ios"), featureKey("io_lat"));
    EXPECT_NE(featureKey(""), 0u);
}

class RegistryTest : public ::testing::Test
{
  protected:
    RegistryTest()
        : reg_("sda1", "bio_latency_prediction",
               Schema().add("pend_ios").add("lat", 8, 3), 8)
    {
    }

    static Schema
    makeSchema()
    {
        Schema s;
        s.add("pend_ios");
        s.add("lat", 8, 3);
        return s;
    }

    Registry reg_;
};

TEST_F(RegistryTest, CaptureCommitRead)
{
    reg_.beginFvCapture(100);
    reg_.captureFeature("pend_ios", 5);
    reg_.captureFeature("lat", 250);
    reg_.commitFvCapture(110);

    auto fvs = reg_.getFeatures();
    ASSERT_EQ(fvs.size(), 1u);
    EXPECT_EQ(fvs[0].ts_begin, 100u);
    EXPECT_EQ(fvs[0].ts_end, 110u);
    EXPECT_EQ(fvs[0].get("pend_ios"), 5u);
    EXPECT_EQ(fvs[0].get("lat"), 250u);
}

TEST_F(RegistryTest, IncrementalCountersPersistAcrossCommits)
{
    reg_.beginFvCapture(0);
    reg_.captureFeatureIncr("pend_ios", 1);
    reg_.captureFeatureIncr("pend_ios", 1);
    reg_.commitFvCapture(10);
    reg_.captureFeatureIncr("pend_ios", -1);
    reg_.commitFvCapture(20);

    auto fvs = reg_.getFeatures();
    ASSERT_EQ(fvs.size(), 2u);
    EXPECT_EQ(fvs[0].get("pend_ios"), 2u);
    EXPECT_EQ(fvs[1].get("pend_ios"), 1u);
}

TEST_F(RegistryTest, HistoryEntriesInherit)
{
    reg_.beginFvCapture(0);
    reg_.captureFeature("lat", 100);
    reg_.commitFvCapture(1);
    reg_.captureFeature("lat", 200);
    reg_.commitFvCapture(2);
    reg_.captureFeature("lat", 300);
    reg_.commitFvCapture(3);

    auto fvs = reg_.getFeatures();
    ASSERT_EQ(fvs.size(), 3u);
    // §5.2: index 0 most recent, 1..N-1 from previous vectors.
    const auto &latest = fvs[2].values.at(featureKey("lat"));
    ASSERT_EQ(latest.size(), 3u);
    EXPECT_EQ(latest[0], 300u);
    EXPECT_EQ(latest[1], 200u);
    EXPECT_EQ(latest[2], 100u);
}

TEST_F(RegistryTest, TimestampQueryFindsContainingVector)
{
    reg_.beginFvCapture(100);
    reg_.captureFeature("pend_ios", 1);
    reg_.commitFvCapture(200);
    reg_.captureFeature("pend_ios", 2);
    reg_.commitFvCapture(300);

    auto hit = reg_.getFeatures(150);
    ASSERT_EQ(hit.size(), 1u);
    EXPECT_EQ(hit[0].get("pend_ios"), 1u);

    auto hit2 = reg_.getFeatures(250);
    ASSERT_EQ(hit2.size(), 1u);
    EXPECT_EQ(hit2[0].get("pend_ios"), 2u);

    EXPECT_TRUE(reg_.getFeatures(99).empty());
}

TEST_F(RegistryTest, TruncatePreservesNewestWithHistory)
{
    reg_.beginFvCapture(0);
    for (int i = 0; i < 4; ++i) {
        reg_.captureFeature("lat", 100 + i);
        reg_.commitFvCapture(10 * (i + 1));
    }
    ASSERT_EQ(reg_.pendingCount(), 4u);

    // §5.4: with history features, the newest vector survives so the
    // next commit can populate its historical entries.
    reg_.truncateFeatures();
    ASSERT_EQ(reg_.pendingCount(), 1u);
    EXPECT_EQ(reg_.getFeatures()[0].get("lat"), 103u);

    // And history still chains through the survivor.
    reg_.captureFeature("lat", 200);
    reg_.commitFvCapture(100);
    auto fvs = reg_.getFeatures();
    const auto &hist = fvs.back().values.at(featureKey("lat"));
    EXPECT_EQ(hist[0], 200u);
    EXPECT_EQ(hist[1], 103u);
}

TEST(RegistryNoHistoryTest, TruncateDropsEverything)
{
    Registry reg("r", "s", Schema().add("x"), 4);
    reg.beginFvCapture(0);
    reg.captureFeature("x", 1);
    reg.commitFvCapture(1);
    reg.truncateFeatures();
    EXPECT_EQ(reg.pendingCount(), 0u);
}

TEST(RegistryNoHistoryTest, TruncateByTimestamp)
{
    Registry reg("r", "s", Schema().add("x"), 8);
    reg.beginFvCapture(0);
    for (int i = 1; i <= 4; ++i) {
        reg.captureFeature("x", i);
        reg.commitFvCapture(i * 10);
    }
    reg.truncateFeatures(Nanos{25});
    auto fvs = reg.getFeatures();
    ASSERT_EQ(fvs.size(), 2u); // ts_end 30 and 40 survive
    EXPECT_EQ(fvs[0].get("x"), 3u);
}

TEST(RegistryRingTest, WindowOverwritesOldest)
{
    Registry reg("r", "s", Schema().add("x"), 2);
    reg.beginFvCapture(0);
    for (int i = 1; i <= 5; ++i) {
        reg.captureFeature("x", i);
        reg.commitFvCapture(i);
    }
    auto fvs = reg.getFeatures();
    ASSERT_EQ(fvs.size(), 2u);
    EXPECT_EQ(fvs[0].get("x"), 4u);
    EXPECT_EQ(fvs[1].get("x"), 5u);
}

TEST(RegistryScoreTest, DispatchesByPolicy)
{
    Registry reg("r", "s", Schema().add("x"), 8);
    int cpu_calls = 0, gpu_calls = 0;
    reg.registerClassifier(
        Arch::Cpu, [&](const std::vector<FeatureVector> &fvs) {
            ++cpu_calls;
            return std::vector<float>(fvs.size(), 0.0f);
        });
    reg.registerClassifier(
        Arch::Gpu, [&](const std::vector<FeatureVector> &fvs) {
            ++gpu_calls;
            return std::vector<float>(fvs.size(), 1.0f);
        });
    reg.registerPolicy(std::make_unique<policy::BatchThresholdPolicy>(4));

    std::vector<FeatureVector> small(2), big(8);
    reg.scoreFeatures(small, 0);
    EXPECT_EQ(cpu_calls, 1);
    EXPECT_EQ(reg.lastEngine(), policy::Engine::Cpu);
    reg.scoreFeatures(big, 0);
    EXPECT_EQ(gpu_calls, 1);
    EXPECT_EQ(reg.lastEngine(), policy::Engine::Gpu);
}

TEST(RegistryScoreTest, FallsBackToCpuWithoutGpuClassifier)
{
    Registry reg("r", "s", Schema().add("x"), 8);
    int cpu_calls = 0;
    reg.registerClassifier(
        Arch::Cpu, [&](const std::vector<FeatureVector> &fvs) {
            ++cpu_calls;
            return std::vector<float>(fvs.size(), 0.0f);
        });
    reg.registerPolicy(std::make_unique<policy::AlwaysGpuPolicy>());
    std::vector<FeatureVector> fvs(4);
    reg.scoreFeatures(fvs, 0);
    EXPECT_EQ(cpu_calls, 1);
    EXPECT_EQ(reg.lastEngine(), policy::Engine::Cpu);
}

TEST(RegistryScoreTest, EmptyBatchIsNoop)
{
    Registry reg("r", "s", Schema().add("x"), 8);
    EXPECT_TRUE(reg.scoreFeatures(std::vector<FeatureVector>{}, 0).empty());
}

TEST(RegistryScoreTest, XpuClassifierIsRejected)
{
    // Regression: Arch::Xpu used to land in a write-only member that
    // no scoreFeatures dispatch could ever reach.
    Registry reg("r", "s", Schema().add("x"), 8);
    Status st = reg.registerClassifier(
        Arch::Xpu, [](const std::vector<FeatureVector> &fvs) {
            return std::vector<float>(fvs.size(), 0.0f);
        });
    EXPECT_EQ(st.code(), Code::InvalidArgument);
    EXPECT_FALSE(reg.hasClassifier(Arch::Xpu));
    EXPECT_FALSE(reg.hasClassifier(Arch::Cpu));

    EXPECT_TRUE(reg.registerClassifier(
                       Arch::Cpu,
                       [](const std::vector<FeatureVector> &fvs) {
                           return std::vector<float>(fvs.size(), 0.0f);
                       })
                    .isOk());
    EXPECT_TRUE(reg.hasClassifier(Arch::Cpu));
    EXPECT_FALSE(reg.hasClassifier(Arch::Gpu));
}

TEST(RegistryCaptureTest, ForwardRestampKeepsFeatures)
{
    // begin-while-open is a forward re-stamp: the window start moves,
    // captured features survive.
    Registry reg("r", "s", Schema().add("x"), 8);
    reg.beginFvCapture(10);
    reg.captureFeature("x", 7);
    EXPECT_TRUE(reg.captureOpen());
    reg.beginFvCapture(20);
    reg.commitFvCapture(30);

    auto fvs = reg.getFeatures();
    ASSERT_EQ(fvs.size(), 1u);
    EXPECT_EQ(fvs[0].ts_begin, 20u);
    EXPECT_EQ(fvs[0].ts_end, 30u);
    EXPECT_EQ(fvs[0].get("x"), 7u);
}

TEST(RegistryCaptureDeathTest, RewindingRestampPanics)
{
    // Regression: a begin while open used to silently rewind
    // open_begin_, fabricating a window predating its own features.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Registry reg("r", "s", Schema().add("x"), 8);
    reg.beginFvCapture(100);
    EXPECT_DEATH(reg.beginFvCapture(50), "rewinds open capture");
}

TEST(RegistryConcurrencyTest, CaptureFromManyThreads)
{
    // §5.3: capture calls may come from arbitrary kernel threads while
    // a capture is open.
    Registry reg("r", "s", Schema().add("ctr").add("x"), 4);
    reg.beginFvCapture(0);
    constexpr int kThreads = 8, kIters = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            for (int i = 0; i < kIters; ++i)
                reg.captureFeatureIncr("ctr", 1);
        });
    }
    for (auto &t : threads)
        t.join();
    reg.commitFvCapture(1);
    EXPECT_EQ(reg.getFeatures()[0].get("ctr"),
              static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(RegistryConcurrencyTest, CaptureWhileCommit)
{
    // Capture threads keep hammering the open window while the owner
    // commits vector after vector; incremental counters must never
    // lose an increment across the commit boundary.
    Registry reg("r", "s", Schema().add("ctr"), 4);
    reg.beginFvCapture(0);

    constexpr int kThreads = 4;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> incrs{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            std::uint64_t mine = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                reg.captureFeatureIncr("ctr", 1);
                ++mine;
            }
            incrs.fetch_add(mine);
        });
    }
    for (Nanos ts = 1; ts <= 200; ++ts)
        reg.commitFvCapture(ts);
    stop.store(true);
    for (auto &t : threads)
        t.join();
    reg.commitFvCapture(1000);

    // The final committed vector holds every increment ever made: the
    // counter is incrementally maintained and persists across commits.
    auto fvs = reg.getFeatures();
    ASSERT_FALSE(fvs.empty());
    EXPECT_EQ(fvs.back().get("ctr"), incrs.load());
}

/** Fixture wiring two same-subsystem registries into a ScoreServer. */
class ScoreServerTest : public ::testing::Test
{
  protected:
    ScoreServerTest() : mgr_(clock_) {}

    /** Creates a registry with an echo classifier (score = x). */
    void
    addRegistry(const std::string &name, const std::string &sys,
                std::vector<std::size_t> *batches)
    {
        ASSERT_TRUE(
            mgr_.createRegistry(name, sys, Schema().add("x"), 64).isOk());
        Registry *reg = mgr_.find(name, sys);
        ASSERT_TRUE(reg->registerClassifier(
                           Arch::Cpu,
                           [batches](const std::vector<FeatureVector>
                                         &fvs) {
                               if (batches)
                                   batches->push_back(fvs.size());
                               std::vector<float> out;
                               for (const FeatureVector &fv : fvs)
                                   out.push_back(static_cast<float>(
                                       fv.get("x")));
                               return out;
                           })
                        .isOk());
    }

    /** One-feature vectors carrying the given x values. */
    static std::vector<FeatureVector>
    fvsWith(std::initializer_list<std::uint64_t> xs)
    {
        std::vector<FeatureVector> out;
        for (std::uint64_t x : xs) {
            FeatureVector fv;
            fv.values[featureKey("x")] = {x};
            out.push_back(std::move(fv));
        }
        return out;
    }

    Clock clock_;
    RegistryManager mgr_;
};

TEST_F(ScoreServerTest, SyncInlineFallbackWhenDisabled)
{
    addRegistry("a", "blk", nullptr);
    ASSERT_EQ(mgr_.scorer(), nullptr);

    int fired = 0;
    Status st = score_features_async(
        mgr_, "a", "blk", fvsWith({4, 9}), 0, [&](const ScoreResult &r) {
            ++fired;
            EXPECT_TRUE(r.status.isOk());
            ASSERT_EQ(r.scores.size(), 2u);
            EXPECT_FLOAT_EQ(r.scores[0], 4.0f);
            EXPECT_FLOAT_EQ(r.scores[1], 9.0f);
            EXPECT_EQ(r.batch, 2u);
        });
    EXPECT_TRUE(st.isOk());
    // Disabled mode degrades to synchronous inline scoring.
    EXPECT_EQ(fired, 1);
}

TEST_F(ScoreServerTest, CoalescesAcrossRegistriesAtMaxBatch)
{
    std::vector<std::size_t> a_batches, b_batches;
    addRegistry("a", "blk", &a_batches);
    addRegistry("b", "blk", &b_batches);

    ScoringConfig cfg;
    cfg.max_batch = 4;
    ASSERT_TRUE(mgr_.enableScoring(cfg).isOk());
    ScoreServer *s = mgr_.scorer();
    ASSERT_NE(s, nullptr);

    int fired_a = 0, fired_b = 0;
    ASSERT_TRUE(s->submit("b", "blk", fvsWith({30, 40}), 0,
                          [&](const ScoreResult &r) {
                              ++fired_b;
                              ASSERT_EQ(r.scores.size(), 2u);
                              EXPECT_FLOAT_EQ(r.scores[0], 30.0f);
                              EXPECT_FLOAT_EQ(r.scores[1], 40.0f);
                              EXPECT_EQ(r.batch, 4u);
                          })
                    .isOk());
    EXPECT_EQ(fired_b, 0); // below max_batch: queued, not scored
    EXPECT_EQ(s->pending(), 2u);

    // Reaching max_batch flushes inline on the submitting call; the
    // coalesced batch dispatches through the first name-ordered
    // registry ("a") and scatters per-request score slices back.
    ASSERT_TRUE(s->submit("a", "blk", fvsWith({10, 20}), 0,
                          [&](const ScoreResult &r) {
                              ++fired_a;
                              ASSERT_EQ(r.scores.size(), 2u);
                              EXPECT_FLOAT_EQ(r.scores[0], 10.0f);
                              EXPECT_FLOAT_EQ(r.scores[1], 20.0f);
                          })
                    .isOk());
    EXPECT_EQ(fired_a, 1);
    EXPECT_EQ(fired_b, 1);
    EXPECT_EQ(s->pending(), 0u);
    ASSERT_EQ(a_batches.size(), 1u);
    EXPECT_EQ(a_batches[0], 4u);
    EXPECT_TRUE(b_batches.empty());
    EXPECT_EQ(s->flushes(), 1u);
}

TEST_F(ScoreServerTest, DeadlineFlushViaPoll)
{
    addRegistry("a", "blk", nullptr);
    ScoringConfig cfg;
    cfg.max_batch = 32;
    cfg.max_delay = 50_us;
    ASSERT_TRUE(mgr_.enableScoring(cfg).isOk());
    ScoreServer *s = mgr_.scorer();

    int fired = 0;
    ASSERT_TRUE(s->submit("a", "blk", fvsWith({1}), 0,
                          [&](const ScoreResult &r) {
                              ++fired;
                              EXPECT_TRUE(r.status.isOk());
                              EXPECT_EQ(r.enqueued, 0u);
                              EXPECT_GE(r.scored, 50_us);
                          })
                    .isOk());

    // Virtual time has not reached the deadline: nothing flushes.
    EXPECT_EQ(s->poll(clock_.now()), 0u);
    EXPECT_EQ(fired, 0);

    clock_.advance(50_us);
    EXPECT_EQ(s->poll(clock_.now()), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(s->pending(), 0u);
}

// ISSUE 7 wrap audit: dispatch clamps its start time to the clock, so
// a flush driven with a stale (smaller-than-clock) `now` can neither
// schedule scoring before the enqueue nor wrap the scored-enqueued
// interval. The clock here is ahead of the flush caller's `now` by a
// full millisecond; every completion must still observe
// scored >= enqueued.
TEST_F(ScoreServerTest, StaleFlushNowCannotWrapQueueLatency)
{
    addRegistry("a", "blk", nullptr);
    ScoringConfig cfg;
    cfg.max_batch = 32;
    cfg.max_delay = 50_us;
    ASSERT_TRUE(mgr_.enableScoring(cfg).isOk());
    ScoreServer *s = mgr_.scorer();

    clock_.advance(1_ms);
    int fired = 0;
    ASSERT_TRUE(s->submit("a", "blk", fvsWith({7}), 0,
                          [&](const ScoreResult &r) {
                              ++fired;
                              EXPECT_TRUE(r.status.isOk());
                              EXPECT_EQ(r.enqueued, 1_ms);
                              EXPECT_GE(r.scored, r.enqueued);
                          })
                    .isOk());

    // A poll at virtual time zero sees no due deadline (due > now) —
    // the stale `now` must not flush, let alone wrap.
    EXPECT_EQ(s->poll(0), 0u);
    EXPECT_EQ(fired, 0);

    // flushAll with the same stale `now` does dispatch; its start is
    // clamped up to the clock so the completion stamps stay ordered.
    EXPECT_EQ(s->flushAll(0), 1u);
    EXPECT_EQ(fired, 1);
}

TEST_F(ScoreServerTest, AdmissionErrors)
{
    addRegistry("a", "blk", nullptr);
    ASSERT_TRUE(
        mgr_.createRegistry("bare", "blk", Schema().add("x"), 8).isOk());
    ScoringConfig cfg;
    ASSERT_TRUE(mgr_.enableScoring(cfg).isOk());
    ScoreServer *s = mgr_.scorer();

    auto never = [](const ScoreResult &) { FAIL(); };
    EXPECT_EQ(s->submit("a", "blk", {}, 0, never).code(),
              Code::InvalidArgument);
    EXPECT_EQ(s->submit("nope", "blk", fvsWith({1}), 0, never).code(),
              Code::InvalidArgument);
    // A registry without a CPU classifier can never score a flush.
    EXPECT_EQ(s->submit("bare", "blk", fvsWith({1}), 0, never).code(),
              Code::InvalidArgument);
}

TEST_F(ScoreServerTest, BackpressureRejectsWhenFull)
{
    addRegistry("a", "blk", nullptr);
    ScoringConfig cfg;
    cfg.queue_capacity = 4;
    cfg.max_batch = 100;
    ASSERT_TRUE(mgr_.enableScoring(cfg).isOk());
    ScoreServer *s = mgr_.scorer();

    int fired = 0;
    auto count = [&](const ScoreResult &) { ++fired; };
    ASSERT_TRUE(s->submit("a", "blk", fvsWith({1, 2, 3, 4}), 0, count)
                    .isOk());
    EXPECT_EQ(s->submit("a", "blk", fvsWith({5}), 0, count).code(),
              Code::ResourceExhausted);
    EXPECT_EQ(s->rejected(), 1u);
    EXPECT_EQ(s->pending(), 4u);

    // The queued work is intact and flushes normally.
    EXPECT_EQ(s->flushAll(clock_.now()), 1u);
    EXPECT_EQ(fired, 1);
}

TEST_F(ScoreServerTest, ShedOldestMakesRoom)
{
    addRegistry("a", "blk", nullptr);
    ScoringConfig cfg;
    cfg.queue_capacity = 4;
    cfg.max_batch = 100;
    cfg.shed_oldest = true;
    ASSERT_TRUE(mgr_.enableScoring(cfg).isOk());
    ScoreServer *s = mgr_.scorer();

    int shed_cb = 0, ok_cb = 0;
    ASSERT_TRUE(s->submit("a", "blk", fvsWith({1, 2, 3, 4}), 0,
                          [&](const ScoreResult &r) {
                              ++shed_cb;
                              EXPECT_EQ(r.status.code(),
                                        Code::ResourceExhausted);
                              EXPECT_TRUE(r.scores.empty());
                          })
                    .isOk());
    // Over capacity: the oldest request is dropped to make room, its
    // callback observing ResourceExhausted.
    ASSERT_TRUE(s->submit("a", "blk", fvsWith({5}), 0,
                          [&](const ScoreResult &r) {
                              ++ok_cb;
                              EXPECT_TRUE(r.status.isOk());
                              ASSERT_EQ(r.scores.size(), 1u);
                              EXPECT_FLOAT_EQ(r.scores[0], 5.0f);
                          })
                    .isOk());
    EXPECT_EQ(shed_cb, 1);
    EXPECT_EQ(s->shed(), 1u);
    EXPECT_EQ(s->pending(), 1u);

    EXPECT_EQ(s->flushAll(clock_.now()), 1u);
    EXPECT_EQ(ok_cb, 1);
}

TEST_F(ScoreServerTest, DestroyRegistryFailsPending)
{
    addRegistry("a", "blk", nullptr);
    ScoringConfig cfg;
    cfg.max_batch = 32;
    ASSERT_TRUE(mgr_.enableScoring(cfg).isOk());
    ScoreServer *s = mgr_.scorer();

    int fired = 0;
    ASSERT_TRUE(s->submit("a", "blk", fvsWith({1, 2}), 0,
                          [&](const ScoreResult &r) {
                              ++fired;
                              EXPECT_EQ(r.status.code(),
                                        Code::Unavailable);
                              EXPECT_TRUE(r.scores.empty());
                          })
                    .isOk());
    ASSERT_TRUE(mgr_.destroyRegistry("a", "blk").isOk());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(s->pending(), 0u);
    // Nothing left to flush.
    EXPECT_EQ(s->flushAll(clock_.now()), 0u);
}

// Regression: a callback's re-entrant submit() that brings the group
// to max_batch used to re-lock the non-recursive flush mutex on the
// same thread (deadlock). It must instead defer to the flush loop
// already running, which drains the new work before returning.
TEST_F(ScoreServerTest, ReentrantSubmitFlushesInOngoingLoop)
{
    std::vector<std::size_t> batches;
    addRegistry("a", "blk", &batches);
    ScoringConfig cfg;
    cfg.max_batch = 2;
    ASSERT_TRUE(mgr_.enableScoring(cfg).isOk());
    ScoreServer *s = mgr_.scorer();

    int inner_fired = 0;
    auto inner = [&](const ScoreResult &r) {
        ++inner_fired;
        EXPECT_TRUE(r.status.isOk());
        ASSERT_EQ(r.scores.size(), 2u);
        EXPECT_FLOAT_EQ(r.scores[0], 7.0f);
        EXPECT_FLOAT_EQ(r.scores[1], 8.0f);
    };
    int outer_fired = 0;
    auto outer = [&](const ScoreResult &r) {
        ++outer_fired;
        EXPECT_TRUE(r.status.isOk());
        // Re-entrant max_batch-deep submit from inside the dispatch.
        EXPECT_TRUE(s->submit("a", "blk", fvsWith({7, 8}), 0, inner)
                        .isOk());
        // Sync scoring from a callback dispatches directly (the flush
        // lock is already held by this thread), not deadlocking.
        std::vector<float> sync =
            score_features(mgr_, "a", "blk", fvsWith({42}), r.scored);
        ASSERT_EQ(sync.size(), 1u);
        EXPECT_FLOAT_EQ(sync[0], 42.0f);
    };

    ASSERT_TRUE(s->submit("a", "blk", fvsWith({1, 2}), 0, outer).isOk());
    EXPECT_EQ(outer_fired, 1);
    EXPECT_EQ(inner_fired, 1); // drained by the same flushWhere loop
    EXPECT_EQ(s->pending(), 0u);
    EXPECT_EQ(s->flushes(), 2u);
    // Two async batches plus the inline sync dispatch.
    ASSERT_EQ(batches.size(), 3u);
    EXPECT_EQ(batches[0], 2u);
}

// Regression: shedding the requests that established the group's
// earliest deadline used to leave the stale (earlier) deadline in
// place, so poll() flushed the survivors prematurely.
TEST_F(ScoreServerTest, ShedRecomputesGroupDeadline)
{
    addRegistry("a", "blk", nullptr);
    ScoringConfig cfg;
    cfg.queue_capacity = 2;
    cfg.max_batch = 100;
    cfg.shed_oldest = true;
    ASSERT_TRUE(mgr_.enableScoring(cfg).isOk());
    ScoreServer *s = mgr_.scorer();

    int shed_cb = 0, ok_cb = 0;
    ASSERT_TRUE(s->submit("a", "blk", fvsWith({1}), 10_us,
                          [&](const ScoreResult &) { ++shed_cb; })
                    .isOk());
    // Over capacity: sheds the 10_us request; only the 100_us one
    // remains, so the group is due at 100_us, not 10_us.
    ASSERT_TRUE(s->submit("a", "blk", fvsWith({2, 3}), 100_us,
                          [&](const ScoreResult &r) {
                              ++ok_cb;
                              EXPECT_TRUE(r.status.isOk());
                          })
                    .isOk());
    EXPECT_EQ(shed_cb, 1);

    clock_.advance(10_us);
    EXPECT_EQ(s->poll(clock_.now()), 0u); // stale deadline must not fire
    EXPECT_EQ(ok_cb, 0);

    clock_.advance(90_us);
    EXPECT_EQ(s->poll(clock_.now()), 1u);
    EXPECT_EQ(ok_cb, 1);
}

// Same stale-deadline shape on the teardown path: destroying the
// registry whose requests carried the group's earliest deadline must
// not leave the survivors due at the dead registry's deadline.
TEST_F(ScoreServerTest, FailPendingRecomputesGroupDeadline)
{
    addRegistry("a", "blk", nullptr);
    addRegistry("b", "blk", nullptr);
    ScoringConfig cfg;
    cfg.max_batch = 100;
    ASSERT_TRUE(mgr_.enableScoring(cfg).isOk());
    ScoreServer *s = mgr_.scorer();

    int a_cb = 0, b_cb = 0;
    ASSERT_TRUE(s->submit("a", "blk", fvsWith({1}), 10_us,
                          [&](const ScoreResult &r) {
                              ++a_cb;
                              EXPECT_EQ(r.status.code(),
                                        Code::Unavailable);
                          })
                    .isOk());
    ASSERT_TRUE(s->submit("b", "blk", fvsWith({2}), 100_us,
                          [&](const ScoreResult &) { ++b_cb; })
                    .isOk());
    ASSERT_TRUE(mgr_.destroyRegistry("a", "blk").isOk());
    EXPECT_EQ(a_cb, 1);

    clock_.advance(10_us);
    EXPECT_EQ(s->poll(clock_.now()), 0u);
    EXPECT_EQ(b_cb, 0);
    clock_.advance(90_us);
    EXPECT_EQ(s->poll(clock_.now()), 1u);
    EXPECT_EQ(b_cb, 1);
}

// Regression (TSan): destroyRegistry() racing submit() used to read
// the registry table unsynchronized and could free a registry that a
// submit had just resolved, leaving a dangling pointer in the queue.
// Destroy is now atomic with submission: every Ok-admitted request's
// callback fires exactly once (scored or Unavailable), never on a
// freed registry.
TEST_F(ScoreServerTest, DestroyRacesSubmitSafely)
{
    // Classifier registration is a caller-serialized setup operation,
    // so each round wires its registry before the threads start; the
    // race under test is destroy-vs-submit, exercised once per round.
    constexpr int kRounds = 40, kSubmitters = 3, kIters = 32;
    for (int round = 0; round < kRounds; ++round) {
        RegistryManager mgr(clock_);
        ASSERT_TRUE(
            mgr.createRegistry("r", "blk", Schema().add("x"), 64).isOk());
        ASSERT_TRUE(mgr.find("r", "blk")
                        ->registerClassifier(
                            Arch::Cpu,
                            [](const std::vector<FeatureVector> &fvs) {
                                return std::vector<float>(fvs.size(),
                                                          1.0f);
                            })
                        .isOk());
        ScoringConfig cfg;
        cfg.max_batch = 4;
        cfg.queue_capacity = 4096;
        ASSERT_TRUE(mgr.enableScoring(cfg).isOk());
        ScoreServer *s = mgr.scorer();

        std::atomic<std::uint64_t> admitted{0}, fired{0};
        std::vector<std::thread> threads;
        for (int t = 0; t < kSubmitters; ++t) {
            threads.emplace_back([&] {
                for (int i = 0; i < kIters; ++i) {
                    Status st = s->submit(
                        "r", "blk",
                        fvsWith({static_cast<std::uint64_t>(i)}), 0,
                        [&](const ScoreResult &) {
                            fired.fetch_add(1);
                        });
                    if (st.isOk())
                        admitted.fetch_add(1);
                }
            });
        }
        threads.emplace_back(
            [&] { ASSERT_TRUE(mgr.destroyRegistry("r", "blk").isOk()); });
        for (auto &t : threads)
            t.join();
        s->flushAll(clock_.now());

        // Every Ok-admitted request's callback fired exactly once —
        // scored or Unavailable, never lost to a freed registry.
        EXPECT_EQ(fired.load(), admitted.load());
        EXPECT_EQ(s->pending(), 0u);
    }
}

// Regression (TSan): facade sync scoring used to bypass the flush
// lock, racing an async flush through the same registry's policy and
// last-engine state. It now serializes against flushes.
TEST_F(ScoreServerTest, SyncScoreSerializesWithAsyncFlush)
{
    addRegistry("a", "blk", nullptr);
    ScoringConfig cfg;
    cfg.max_batch = 4;
    cfg.queue_capacity = 4096;
    ASSERT_TRUE(mgr_.enableScoring(cfg).isOk());
    ScoreServer *s = mgr_.scorer();

    constexpr int kIters = 200;
    std::atomic<std::uint64_t> scored{0};
    std::thread async_thread([&] {
        for (int i = 0; i < kIters; ++i) {
            ASSERT_TRUE(
                s->submit("a", "blk",
                          fvsWith({static_cast<std::uint64_t>(i)}), 0,
                          [&](const ScoreResult &r) {
                              scored.fetch_add(r.scores.size());
                          })
                    .isOk());
        }
    });
    std::thread sync_thread([&] {
        for (int i = 0; i < kIters; ++i) {
            std::vector<float> out = score_features(
                mgr_, "a", "blk",
                fvsWith({static_cast<std::uint64_t>(i)}), clock_.now());
            ASSERT_EQ(out.size(), 1u);
            EXPECT_FLOAT_EQ(out[0], static_cast<float>(i));
        }
    });
    async_thread.join();
    sync_thread.join();
    s->flushAll(clock_.now());
    EXPECT_EQ(scored.load(), static_cast<std::uint64_t>(kIters));
    EXPECT_EQ(s->pending(), 0u);
}

TEST_F(ScoreServerTest, ConcurrentSubmitIsSafe)
{
    addRegistry("a", "blk", nullptr);
    addRegistry("b", "blk", nullptr);
    ScoringConfig cfg;
    cfg.max_batch = 8;
    cfg.queue_capacity = 4096;
    ASSERT_TRUE(mgr_.enableScoring(cfg).isOk());
    ScoreServer *s = mgr_.scorer();

    constexpr int kThreads = 4, kIters = 64;
    std::atomic<std::uint64_t> scored{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const std::string name = (t % 2) ? "a" : "b";
            for (int i = 0; i < kIters; ++i) {
                Status st = s->submit(
                    name, "blk", fvsWith({static_cast<std::uint64_t>(i)}),
                    0, [&](const ScoreResult &r) {
                        scored.fetch_add(r.scores.size());
                    });
                ASSERT_TRUE(st.isOk());
            }
        });
    }
    for (auto &t : threads)
        t.join();
    s->flushAll(clock_.now());

    EXPECT_EQ(scored.load(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(s->pending(), 0u);
    EXPECT_EQ(s->submitted(),
              static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ManagerTest, CaptureHandleBindsAndInternKeys)
{
    Clock clock;
    RegistryManager mgr(clock);
    ASSERT_TRUE(
        mgr.createRegistry("sda1", "bio", Schema().add("pend_ios"), 8)
            .isOk());

    CaptureHandle cap = capture_handle(mgr, "sda1", "bio");
    ASSERT_TRUE(cap.valid());
    std::uint64_t k = cap.key("pend_ios");
    EXPECT_EQ(k, featureKey("pend_ios"));

    cap.beginFvCapture(0);
    cap.captureFeature(k, 7);
    cap.captureFeatureIncr(k, 2);
    cap.commitFvCapture(5);
    auto fvs = get_features(mgr, "sda1", "bio", std::nullopt);
    ASSERT_EQ(fvs.size(), 1u);
    EXPECT_EQ(fvs[0].get("pend_ios"), 9u);

    EXPECT_FALSE(capture_handle(mgr, "nope", "bio").valid());
}

TEST(ManagerTest, LifecycleAndFacade)
{
    Clock clock;
    RegistryManager mgr(clock);

    Schema schema;
    schema.add("pend_ios");
    EXPECT_TRUE(
        create_registry(mgr, "sda1", "bio", std::move(schema), 16).isOk());
    EXPECT_EQ(mgr.registryCount(), 1u);
    // Duplicate creation fails.
    Schema schema2;
    schema2.add("pend_ios");
    EXPECT_EQ(create_registry(mgr, "sda1", "bio", std::move(schema2), 16)
                  .code(),
              Code::AlreadyExists);

    // The Listing 4/5 flow through the facade.
    begin_fv_capture(mgr, "sda1", "bio", 0);
    capture_feature_incr(mgr, "sda1", "bio", "pend_ios", 1);
    commit_fv_capture(mgr, "sda1", "bio", 5);
    auto fvs = get_features(mgr, "sda1", "bio", std::nullopt);
    ASSERT_EQ(fvs.size(), 1u);
    EXPECT_EQ(fvs[0].get("pend_ios"), 1u);
    truncate_features(mgr, "sda1", "bio", std::nullopt);
    EXPECT_TRUE(get_features(mgr, "sda1", "bio", std::nullopt).empty());

    EXPECT_TRUE(destroy_registry(mgr, "sda1", "bio").isOk());
    EXPECT_EQ(destroy_registry(mgr, "sda1", "bio").code(),
              Code::NotFound);
}

TEST(ModelStoreTest, LifecycleAndCosts)
{
    Clock clock;
    ModelStore store(clock);

    EXPECT_TRUE(store.createModel("/m/lat.nn").isOk());
    EXPECT_EQ(store.createModel("/m/lat.nn").code(), Code::AlreadyExists);
    EXPECT_TRUE(store.exists("/m/lat.nn"));

    std::vector<std::uint8_t> blob = {1, 2, 3, 4};
    EXPECT_TRUE(store.updateModel("/m/lat.nn", blob).isOk());
    // Not loaded into memory until load_model.
    EXPECT_EQ(store.inMemory("/m/lat.nn"), nullptr);
    EXPECT_TRUE(store.loadModel("/m/lat.nn").isOk());
    ASSERT_NE(store.inMemory("/m/lat.nn"), nullptr);
    EXPECT_EQ(*store.inMemory("/m/lat.nn"), blob);

    // Durable operations charge file-system-scale time.
    EXPECT_GE(clock.now(), 3 * ModelStore::kFsOpCost);

    // updateModel leaves the in-memory image serving old weights.
    std::vector<std::uint8_t> blob2 = {9, 9};
    EXPECT_TRUE(store.updateModel("/m/lat.nn", blob2).isOk());
    EXPECT_EQ(*store.inMemory("/m/lat.nn"), blob);
    EXPECT_TRUE(store.loadModel("/m/lat.nn").isOk());
    EXPECT_EQ(*store.inMemory("/m/lat.nn"), blob2);

    EXPECT_TRUE(store.deleteModel("/m/lat.nn").isOk());
    EXPECT_FALSE(store.exists("/m/lat.nn"));
    EXPECT_EQ(store.loadModel("/m/lat.nn").code(), Code::NotFound);
}

} // namespace
} // namespace lake::registry
