// Tests for base::ThreadPool: the deterministic chunking contract,
// nested/serial fast paths, exception barring, env sizing, and
// shutdown while callers are hammering the pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/thread_pool.h"

namespace lake::base {
namespace {

/** Runs fn(b, e) chunks through @p pool and returns the sorted chunk
 *  list, verifying every index was visited exactly once. */
std::vector<std::pair<std::size_t, std::size_t>>
collectChunks(ThreadPool &pool, std::size_t begin, std::size_t end,
              std::size_t grain)
{
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::vector<int> visits(end, 0);
    pool.parallelFor(begin, end, grain,
                     [&](std::size_t b, std::size_t e) {
                         std::lock_guard<std::mutex> lk(mu);
                         chunks.emplace_back(b, e);
                         for (std::size_t i = b; i < e; ++i)
                             ++visits[i];
                     });
    for (std::size_t i = begin; i < end; ++i)
        EXPECT_EQ(visits[i], 1) << "index " << i;
    std::sort(chunks.begin(), chunks.end());
    return chunks;
}

TEST(ThreadPoolTest, ChunkBoundariesArePureFunctionOfRangeAndGrain)
{
    ThreadPool p1(1), p4(4);
    for (auto [begin, end, grain] :
         {std::tuple<std::size_t, std::size_t, std::size_t>{0, 100, 7},
          {3, 100, 7},
          {0, 1, 1},
          {0, 64, 64},
          {0, 65, 64},
          {5, 5, 3},   // empty range: no chunks
          {0, 10, 0},  // grain 0 clamps to 1
          {0, 1000, 1}}) {
        auto a = collectChunks(p1, begin, end, grain);
        auto b = collectChunks(p4, begin, end, grain);
        EXPECT_EQ(a, b) << "range [" << begin << ", " << end
                        << ") grain " << grain;
        // Chunks tile the range: contiguous, ascending, grain-sized
        // except possibly the last.
        std::size_t expect_b = begin;
        std::size_t g = grain ? grain : 1;
        for (std::size_t c = 0; c < a.size(); ++c) {
            EXPECT_EQ(a[c].first, expect_b);
            if (c + 1 < a.size())
                EXPECT_EQ(a[c].second - a[c].first, g);
            expect_b = a[c].second;
        }
        if (begin < end)
            EXPECT_EQ(expect_b, end);
        else
            EXPECT_TRUE(a.empty());
    }
}

TEST(ThreadPoolTest, ResultsIdenticalAcrossThreadCounts)
{
    // Each chunk writes disjoint output; per the determinism contract
    // the float results must be bit-identical at any thread count.
    const std::size_t n = 4096;
    auto run = [n](std::size_t threads) {
        ThreadPool pool(threads);
        std::vector<float> out(n);
        pool.parallelFor(0, n, 13, [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                float acc = 0.0f;
                for (std::size_t j = 0; j < 32; ++j)
                    acc += static_cast<float>((i * 31 + j) % 97) * 0.13f;
                out[i] = acc;
            }
        });
        return out;
    };
    std::vector<float> t1 = run(1), t2 = run(2), t8 = run(8);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(t1[i], t2[i]) << i;
        ASSERT_EQ(t1[i], t8[i]) << i;
    }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineOnCallingThread)
{
    ThreadPool pool(4);
    std::atomic<int> outer_chunks{0};
    std::atomic<int> inner_total{0};
    std::atomic<bool> inner_same_thread{true};
    pool.parallelFor(0, 8, 1, [&](std::size_t, std::size_t) {
        ++outer_chunks;
        std::thread::id outer_tid = std::this_thread::get_id();
        pool.parallelFor(0, 16, 4, [&](std::size_t b, std::size_t e) {
            if (std::this_thread::get_id() != outer_tid)
                inner_same_thread = false;
            inner_total += static_cast<int>(e - b);
        });
    });
    EXPECT_EQ(outer_chunks.load(), 8);
    EXPECT_EQ(inner_total.load(), 8 * 16);
    EXPECT_TRUE(inner_same_thread.load())
        << "nested parallelFor must not fan out to other workers";
}

TEST(ThreadPoolTest, CallerParticipatesAndThreadCountIsTotal)
{
    EXPECT_EQ(ThreadPool(1).threadCount(), 1u);
    EXPECT_EQ(ThreadPool(4).threadCount(), 4u);

    // With a 1-thread pool everything runs on the caller.
    ThreadPool solo(1);
    std::thread::id me = std::this_thread::get_id();
    bool on_caller = true;
    solo.parallelFor(0, 32, 4, [&](std::size_t, std::size_t) {
        if (std::this_thread::get_id() != me)
            on_caller = false;
    });
    EXPECT_TRUE(on_caller);
}

TEST(ThreadPoolTest, ConcurrentCallersAreSerializedSafely)
{
    ThreadPool pool(4);
    std::atomic<long> total{0};
    std::vector<std::thread> callers;
    for (int t = 0; t < 4; ++t)
        callers.emplace_back([&] {
            for (int iter = 0; iter < 50; ++iter)
                pool.parallelFor(0, 100, 9,
                                 [&](std::size_t b, std::size_t e) {
                                     total += static_cast<long>(e - b);
                                 });
        });
    for (auto &c : callers)
        c.join();
    EXPECT_EQ(total.load(), 4L * 50L * 100L);
}

TEST(ThreadPoolTest, ShutdownUnderLoadJoinsCleanly)
{
    // Construct/demolish pools while caller threads drive work; the
    // destructor must drain in-flight jobs before joining workers.
    for (int round = 0; round < 20; ++round) {
        auto pool = std::make_unique<ThreadPool>(4);
        std::atomic<long> sum{0};
        std::vector<std::thread> callers;
        for (int t = 0; t < 2; ++t)
            callers.emplace_back([&] {
                for (int iter = 0; iter < 5; ++iter)
                    pool->parallelFor(0, 64, 3,
                                      [&](std::size_t b, std::size_t e) {
                                          sum += static_cast<long>(e - b);
                                      });
            });
        for (auto &c : callers)
            c.join();
        pool.reset(); // destructor races only with quiesced state
        EXPECT_EQ(sum.load(), 2L * 5L * 64L);
    }
}

TEST(ThreadPoolTest, ConfiguredThreadsParsesEnv)
{
    ASSERT_EQ(setenv("LAKE_CPU_THREADS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::configuredThreads(), 3u);
    ASSERT_EQ(setenv("LAKE_CPU_THREADS", "1", 1), 0);
    EXPECT_EQ(ThreadPool::configuredThreads(), 1u);

    // Bad values fall back to hardware concurrency (>= 1), with a
    // warning rather than a crash.
    for (const char *bad : {"0", "-2", "abc", "4x", "99999"}) {
        ASSERT_EQ(setenv("LAKE_CPU_THREADS", bad, 1), 0);
        EXPECT_GE(ThreadPool::configuredThreads(), 1u) << bad;
    }
    ASSERT_EQ(unsetenv("LAKE_CPU_THREADS"), 0);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
}

TEST(ThreadPoolTest, ResetGlobalResizesTheSharedPool)
{
    ThreadPool::resetGlobal(3);
    EXPECT_EQ(ThreadPool::global().threadCount(), 3u);
    ThreadPool::resetGlobal(1);
    EXPECT_EQ(ThreadPool::global().threadCount(), 1u);
    ThreadPool::resetGlobal(0); // back to the configured default
    EXPECT_GE(ThreadPool::global().threadCount(), 1u);
}

TEST(ThreadPoolDeathTest, ThrowingTaskPanicsOnSerialPath)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ThreadPool pool(1);
            pool.parallelFor(0, 4, 1, [](std::size_t, std::size_t) {
                throw std::runtime_error("boom");
            });
        },
        "must not throw");
}

TEST(ThreadPoolDeathTest, ThrowingTaskPanicsOnWorkerPath)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ThreadPool pool(4);
            pool.parallelFor(0, 64, 1, [](std::size_t, std::size_t) {
                throw std::runtime_error("boom");
            });
        },
        "must not throw");
}

} // namespace
} // namespace lake::base
