// Tests for the pipelined remoting fast path (ISSUE 3): batched
// one-way command ordering, every flush trigger, interaction with the
// fault-injection / degraded-mode machinery of ISSUE 2, the
// malformed-batch corpus lakeD must survive, and the zero-allocation
// guarantee of the steady-state send path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "base/rng.h"
#include "channel/fault.h"
#include "core/lake.h"
#include "remote/wire.h"

// ---------------------------------------------------------------------
// Global allocation counter for the zero-alloc test. Counting is off
// by default, so every other test in this binary is unaffected.
// ---------------------------------------------------------------------

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_allocs{0};

} // namespace

// noinline keeps GCC from pairing an inlined free() with the new
// expression at call sites and warning about mismatched allocators.
__attribute__((noinline)) void *
operator new(std::size_t n)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

__attribute__((noinline)) void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

__attribute__((noinline)) void
operator delete(void *p) noexcept
{
    std::free(p);
}

__attribute__((noinline)) void
operator delete[](void *p) noexcept
{
    std::free(p);
}

__attribute__((noinline)) void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

__attribute__((noinline)) void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace lake {
namespace {

using channel::FaultSpec;
using gpu::CuResult;
using remote::ApiId;
using remote::Encoder;
using remote::makeCommand;
using remote::PipelineConfig;
using Dir = channel::Channel::Dir;

core::LakeConfig
pipelinedConfig(std::size_t max_batch = 16)
{
    core::LakeConfig cfg;
    cfg.pipeline.enabled = true;
    cfg.pipeline.max_batch = max_batch;
    return cfg;
}

gpu::LaunchConfig
vecAddLaunch(gpu::DevicePtr buf, std::size_t n)
{
    gpu::LaunchConfig cfg;
    cfg.kernel = "vec_add";
    cfg.grid_x = 1;
    cfg.block_x = static_cast<std::uint32_t>(n);
    cfg.arg(buf).arg(buf).arg(buf).arg(static_cast<std::uint64_t>(n),
                                       nullptr);
    return cfg;
}

// ---------------------------------------------------------------------
// Ordering
// ---------------------------------------------------------------------

TEST(PipelineOrderingTest, BatchedCopiesExecuteInIssueOrder)
{
    core::Lake lake(pipelinedConfig(16));
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 64), CuResult::Success);

    // Two staging buffers with different fills, copied to the SAME
    // device range in issue order. Both copies ride one batch; if the
    // daemon replayed them out of order the first fill would win.
    shm::ShmOffset s1 = lake.arena().alloc(64);
    shm::ShmOffset s2 = lake.arena().alloc(64);
    std::memset(lake.arena().at(s1), 0x11, 64);
    std::memset(lake.arena().at(s2), 0x22, 64);

    EXPECT_EQ(lake.lib().cuMemcpyHtoDShmAsync(dev, s1, 64, 0),
              CuResult::Success);
    EXPECT_EQ(lake.lib().cuMemcpyHtoDShmAsync(dev, s2, 64, 0),
              CuResult::Success);
    EXPECT_EQ(lake.lib().cuStreamSynchronize(0), CuResult::Success);

    shm::ShmOffset out = lake.arena().alloc(64);
    ASSERT_EQ(lake.lib().cuMemcpyDtoHShm(out, dev, 64),
              CuResult::Success);
    const auto *p = static_cast<const std::uint8_t *>(lake.arena().at(out));
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(p[i], 0x22) << "byte " << i;
}

TEST(PipelineOrderingTest, BatchedLaunchesAllExecuteOnce)
{
    core::Lake lake(pipelinedConfig(16));
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 64 * sizeof(float)),
              CuResult::Success);
    gpu::LaunchConfig launch = vecAddLaunch(dev, 64);

    std::uint64_t before = lake.device().launches();
    const int kLaunches = 40; // spans multiple batches of 16
    for (int i = 0; i < kLaunches; ++i)
        EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
    EXPECT_EQ(lake.lib().cuStreamSynchronize(0), CuResult::Success);

    EXPECT_EQ(lake.device().launches() - before, 40u);
    EXPECT_GE(lake.lib().commandsBatched(), 40u);
    // 40 one-ways at depth 16 = 2 full flushes + the sync's partial.
    EXPECT_EQ(lake.lib().batchesFlushed(), 3u);
    EXPECT_EQ(lake.daemon().batchesReceived(), 3u);
}

TEST(PipelineOrderingTest, PipelinedMatchesUnbatchedResults)
{
    auto run = [](bool pipelined) {
        core::Lake lake(pipelined ? pipelinedConfig(8)
                                  : core::LakeConfig{});
        gpu::DevicePtr dev = 0;
        EXPECT_EQ(lake.lib().cuMemAlloc(&dev, 64 * sizeof(float)),
                  CuResult::Success);
        shm::ShmOffset stage = lake.arena().alloc(64 * sizeof(float));
        auto *f = static_cast<float *>(lake.arena().at(stage));
        for (int i = 0; i < 64; ++i)
            f[i] = static_cast<float>(i);
        EXPECT_EQ(lake.lib().cuMemcpyHtoDShmAsync(dev, stage,
                                                  64 * sizeof(float), 0),
                  CuResult::Success);
        gpu::LaunchConfig launch = vecAddLaunch(dev, 64);
        for (int i = 0; i < 3; ++i)
            EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0),
                      CuResult::Success);
        EXPECT_EQ(lake.lib().cuStreamSynchronize(0), CuResult::Success);
        shm::ShmOffset out = lake.arena().alloc(64 * sizeof(float));
        EXPECT_EQ(lake.lib().cuMemcpyDtoHShm(out, dev, 64 * sizeof(float)),
                  CuResult::Success);
        const auto *of = static_cast<const float *>(lake.arena().at(out));
        return std::vector<float>(of, of + 64);
    };
    // Identical math either way: batching reorders nothing, it only
    // coalesces the wire traffic.
    EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------
// Flush triggers
// ---------------------------------------------------------------------

TEST(PipelineFlushTest, BatchDepthTriggersFlush)
{
    core::Lake lake(pipelinedConfig(4));
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 64 * sizeof(float)),
              CuResult::Success);
    gpu::LaunchConfig launch = vecAddLaunch(dev, 64);

    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
    EXPECT_EQ(lake.lib().pendingBatched(), 3u);
    EXPECT_EQ(lake.lib().batchesFlushed(), 0u);

    EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
    EXPECT_EQ(lake.lib().pendingBatched(), 0u);
    EXPECT_EQ(lake.lib().batchesFlushed(), 1u);
}

TEST(PipelineFlushTest, TwoWayCallFlushesPendingFirst)
{
    core::Lake lake(pipelinedConfig(16));
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 64 * sizeof(float)),
              CuResult::Success);
    gpu::LaunchConfig launch = vecAddLaunch(dev, 64);
    std::uint64_t before = lake.device().launches();

    EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
    EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
    EXPECT_EQ(lake.lib().pendingBatched(), 2u);

    // A two-way RPC must drain the batch ahead of itself so the daemon
    // observes program order.
    gpu::DevicePtr dev2 = 0;
    EXPECT_EQ(lake.lib().cuMemAlloc(&dev2, 64), CuResult::Success);
    EXPECT_EQ(lake.lib().pendingBatched(), 0u);
    EXPECT_EQ(lake.lib().batchesFlushed(), 1u);
    EXPECT_EQ(lake.device().launches() - before, 2u);
}

TEST(PipelineFlushTest, ExplicitFlushDrainsAndEmptyFlushIsNoop)
{
    core::Lake lake(pipelinedConfig(16));
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 64 * sizeof(float)),
              CuResult::Success);
    gpu::LaunchConfig launch = vecAddLaunch(dev, 64);
    std::uint64_t doorbells = lake.lib().doorbells();

    EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
    EXPECT_EQ(lake.lib().pendingBatched(), 1u);
    lake.lib().flush();
    EXPECT_EQ(lake.lib().pendingBatched(), 0u);
    EXPECT_EQ(lake.lib().batchesFlushed(), 1u);
    EXPECT_EQ(lake.lib().doorbells() - doorbells, 1u);

    // Nothing pending: no message, no doorbell.
    lake.lib().flush();
    EXPECT_EQ(lake.lib().batchesFlushed(), 1u);
    EXPECT_EQ(lake.lib().doorbells() - doorbells, 1u);
}

TEST(PipelineFlushTest, ReconfigureFlushesPending)
{
    core::Lake lake(pipelinedConfig(16));
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 64 * sizeof(float)),
              CuResult::Success);
    gpu::LaunchConfig launch = vecAddLaunch(dev, 64);
    std::uint64_t before = lake.device().launches();

    EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
    EXPECT_EQ(lake.lib().pendingBatched(), 1u);

    lake.lib().setPipeline(PipelineConfig{}); // back to unbatched
    EXPECT_EQ(lake.lib().pendingBatched(), 0u);
    EXPECT_EQ(lake.lib().cuStreamSynchronize(0), CuResult::Success);
    EXPECT_EQ(lake.device().launches() - before, 1u);
}

TEST(PipelineFlushTest, DisabledPipelineSendsPerCommand)
{
    core::Lake lake; // default config: pipelining off
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 64 * sizeof(float)),
              CuResult::Success);
    gpu::LaunchConfig launch = vecAddLaunch(dev, 64);
    std::uint64_t doorbells = lake.lib().doorbells();

    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
    EXPECT_EQ(lake.lib().doorbells() - doorbells, 5u);
    EXPECT_EQ(lake.lib().commandsBatched(), 0u);
    EXPECT_EQ(lake.lib().batchesFlushed(), 0u);
    EXPECT_EQ(lake.daemon().batchesReceived(), 0u);
}

TEST(PipelineFlushTest, DeferredFreeRidesTheBatch)
{
    core::LakeConfig cfg = pipelinedConfig(16);
    cfg.pipeline.defer_frees = true;
    core::Lake lake(cfg);

    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 4096), CuResult::Success);
    std::uint64_t mem_before = lake.device().memUsed();

    // Deferred free returns Success immediately and stays pending...
    EXPECT_EQ(lake.lib().cuMemFree(dev), CuResult::Success);
    EXPECT_EQ(lake.lib().pendingBatched(), 1u);
    EXPECT_EQ(lake.device().memUsed(), mem_before);

    // ...until a sync point flushes it through the daemon.
    EXPECT_EQ(lake.lib().cuCtxSynchronize(), CuResult::Success);
    EXPECT_EQ(lake.lib().pendingBatched(), 0u);
    EXPECT_LT(lake.device().memUsed(), mem_before);
}

// ---------------------------------------------------------------------
// Fault interaction
// ---------------------------------------------------------------------

TEST(PipelineFaultTest, DroppedBatchIsLostAsAUnitAndNeverRetried)
{
    core::Lake lake(pipelinedConfig(4));
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 64 * sizeof(float)),
              CuResult::Success);
    gpu::LaunchConfig launch = vecAddLaunch(dev, 64);

    // Healthy warmup batch.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
    std::uint64_t after_warmup = lake.device().launches();
    EXPECT_EQ(after_warmup, 4u);

    // Drop everything: the next full batch vanishes in the channel.
    FaultSpec spec;
    spec.drop = 1.0;
    lake.channel().installFaults(spec);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
    EXPECT_EQ(lake.device().launches(), after_warmup);

    // Transport restored: batches are one-way, so the lost one is
    // never re-sent — later traffic proceeds without it.
    lake.channel().faults()->disarm();
    EXPECT_EQ(lake.lib().cuStreamSynchronize(0), CuResult::Success);
    EXPECT_EQ(lake.device().launches(), after_warmup);
    std::uint64_t retries = lake.remoteStats().retries;
    EXPECT_EQ(retries, 0u);

    // And the daemon still serves fresh work.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
    EXPECT_EQ(lake.lib().cuStreamSynchronize(0), CuResult::Success);
    EXPECT_EQ(lake.device().launches(), after_warmup + 4);
}

TEST(PipelineFaultTest, SyncTimeoutSurfacesLossAndLatchesDegraded)
{
    core::LakeConfig cfg = pipelinedConfig(8);
    cfg.degrade_threshold = 3;
    core::Lake lake(cfg);
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 64 * sizeof(float)),
              CuResult::Success);
    gpu::LaunchConfig launch = vecAddLaunch(dev, 64);

    FaultSpec spec;
    spec.drop = 1.0;
    lake.channel().installFaults(spec);

    // Batched one-ways are fire-and-forget; the loss becomes visible
    // at the next synchronizing call, whose own RPC times out. Repeat
    // until the failure streak latches degraded mode — the ISSUE 2
    // contract must survive pipelining.
    for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
        EXPECT_NE(lake.lib().cuStreamSynchronize(0), CuResult::Success);
    }
    EXPECT_TRUE(lake.degraded());
    EXPECT_GT(lake.remoteStats().faults_seen, 0u);
}

TEST(PipelineFaultTest, FaultFreePipelinedRunSeesNoFaults)
{
    core::Lake lake(pipelinedConfig(8));
    gpu::DevicePtr dev = 0;
    ASSERT_EQ(lake.lib().cuMemAlloc(&dev, 64 * sizeof(float)),
              CuResult::Success);
    gpu::LaunchConfig launch = vecAddLaunch(dev, 64);
    for (int i = 0; i < 30; ++i)
        EXPECT_EQ(lake.lib().cuLaunchKernel(launch, 0), CuResult::Success);
    EXPECT_EQ(lake.lib().cuStreamSynchronize(0), CuResult::Success);
    EXPECT_EQ(lake.remoteStats().faults_seen, 0u);
    EXPECT_FALSE(lake.degraded());
    EXPECT_EQ(lake.device().launches(), 30u);
}

// ---------------------------------------------------------------------
// Malformed-batch corpus
// ---------------------------------------------------------------------

class MalformedBatchTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        ASSERT_EQ(lake_.lib().cuMemAlloc(&dev_, 64 * sizeof(float)),
                  CuResult::Success);
    }

    /** Assembles a batch message from pre-encoded command frames. */
    static std::vector<std::uint8_t>
    buildBatch(const std::vector<std::vector<std::uint8_t>> &frames,
               std::uint32_t declared_count)
    {
        Encoder enc;
        enc.u32(remote::kBatchMagic).u32(declared_count);
        for (const auto &f : frames) {
            enc.u32(static_cast<std::uint32_t>(f.size()));
            enc.raw(f.data(), f.size());
        }
        return enc.take();
    }

    /** One valid vec_add launch command frame. */
    std::vector<std::uint8_t>
    launchFrame(std::uint32_t seq)
    {
        Encoder e = makeCommand(ApiId::CuLaunchKernel, seq);
        e.str("vec_add").u32(1).u32(64);
        e.u32(4);
        e.u64(dev_).u64(dev_).u64(dev_).u64(64);
        e.u32(0);
        return e.take();
    }

    /** Feeds one raw buffer to lakeD and discards responses. */
    void inject(std::vector<std::uint8_t> buf)
    {
        lake_.channel().send(Dir::KernelToUser, std::move(buf));
        lake_.daemon().processPending();
        while (lake_.channel().tryRecv(Dir::UserToKernel))
            ;
    }

    /** lakeD must still serve well-formed traffic afterwards. */
    void expectDaemonStillHealthy()
    {
        (void)lake_.lib().cuCtxSynchronize(); // drain deferred errors
        EXPECT_EQ(lake_.lib().cuCtxSynchronize(), CuResult::Success);
        gpu::DevicePtr p = 0;
        EXPECT_EQ(lake_.lib().cuMemAlloc(&p, 256), CuResult::Success);
        EXPECT_EQ(lake_.lib().cuMemFree(p), CuResult::Success);
    }

    core::Lake lake_;
    gpu::DevicePtr dev_ = 0;
};

TEST_F(MalformedBatchTest, TruncationAtEveryByteBoundary)
{
    std::vector<std::uint8_t> batch =
        buildBatch({launchFrame(1), launchFrame(2), launchFrame(3)}, 3);
    for (std::size_t len = 0; len < batch.size(); ++len)
        inject(std::vector<std::uint8_t>(batch.begin(),
                                         batch.begin() + len));
    // Every truncation that cuts framing (not just a whole trailing
    // frame) is counted; none may crash or wedge the daemon.
    EXPECT_GT(lake_.daemon().malformedRejected(), 0u);
    expectDaemonStillHealthy();
}

TEST_F(MalformedBatchTest, GarbledCommandBodySkipsExactlyThatCommand)
{
    std::vector<std::vector<std::uint8_t>> frames = {
        launchFrame(1), launchFrame(2), launchFrame(3)};
    // Garble the middle command's kernel-name bytes (past the 8-byte
    // prologue and the string's own length prefix).
    frames[1][20] ^= 0xff;
    std::uint64_t before = lake_.device().launches();
    inject(buildBatch(frames, 3));
    // The length prefix still locates frame 3: commands 1 and 3 ran.
    EXPECT_EQ(lake_.device().launches() - before, 2u);
    expectDaemonStillHealthy();
}

TEST_F(MalformedBatchTest, OversizedLengthPrefixEndsBatchSafely)
{
    std::vector<std::vector<std::uint8_t>> frames = {
        launchFrame(1), launchFrame(2)};
    std::vector<std::uint8_t> batch = buildBatch(frames, 2);
    // Rewrite frame 2's length prefix to claim bytes past the buffer.
    std::size_t len2_at = 8 + 4 + frames[0].size();
    batch[len2_at] = 0xff;
    batch[len2_at + 1] = 0xff;
    batch[len2_at + 2] = 0xff;
    batch[len2_at + 3] = 0x7f;

    std::uint64_t before = lake_.device().launches();
    std::uint64_t malformed = lake_.daemon().malformedRejected();
    inject(std::move(batch));
    EXPECT_EQ(lake_.device().launches() - before, 1u);
    EXPECT_EQ(lake_.daemon().malformedRejected() - malformed, 1u);
    expectDaemonStillHealthy();
}

TEST_F(MalformedBatchTest, CountPastActualFramesEndsBatchSafely)
{
    std::uint64_t before = lake_.device().launches();
    std::uint64_t malformed = lake_.daemon().malformedRejected();
    inject(buildBatch({launchFrame(1), launchFrame(2)}, 5));
    EXPECT_EQ(lake_.device().launches() - before, 2u);
    EXPECT_EQ(lake_.daemon().malformedRejected() - malformed, 1u);
    expectDaemonStillHealthy();
}

TEST_F(MalformedBatchTest, TrailingBytesAfterDeclaredCountRejected)
{
    std::vector<std::uint8_t> batch =
        buildBatch({launchFrame(1), launchFrame(2)}, 1);
    std::uint64_t before = lake_.device().launches();
    std::uint64_t malformed = lake_.daemon().malformedRejected();
    inject(std::move(batch));
    // Only the declared command runs; the smuggled tail is counted and
    // never executed.
    EXPECT_EQ(lake_.device().launches() - before, 1u);
    EXPECT_EQ(lake_.daemon().malformedRejected() - malformed, 1u);
    expectDaemonStillHealthy();
}

TEST_F(MalformedBatchTest, EmptyBatchIsHarmless)
{
    std::uint64_t malformed = lake_.daemon().malformedRejected();
    inject(buildBatch({}, 0));
    EXPECT_EQ(lake_.daemon().malformedRejected(), malformed);
    expectDaemonStillHealthy();
}

TEST_F(MalformedBatchTest, SeededBitFlipsNeverPanicTheDaemon)
{
    Rng rng(99);
    std::vector<std::uint8_t> base =
        buildBatch({launchFrame(1), launchFrame(2), launchFrame(3)}, 3);
    for (int round = 0; round < 200; ++round) {
        std::vector<std::uint8_t> buf = base;
        int flips = rng.uniformInt(1, 8);
        for (int i = 0; i < flips; ++i) {
            std::size_t at = rng.uniformInt(0, buf.size() - 1);
            buf[at] ^= static_cast<std::uint8_t>(
                1u << rng.uniformInt(0, 7));
        }
        inject(std::move(buf));
    }
    expectDaemonStillHealthy();
}

TEST(BatchWireTest, MagicCannotCollideWithAnyApiId)
{
    // handleOne routes on the first u32: a batch header must never be
    // mistakable for a plain command prologue.
    for (std::uint32_t id = 0; id <= 64; ++id)
        ASSERT_NE(remote::kBatchMagic, id);
}

// ---------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------

/**
 * A hand-wired stack whose doorbell can be muted, so the counting
 * window isolates lakeLib's send path (encode, batch append, channel
 * send) from lakeD's dispatch — whose BusyTracker legitimately grows
 * a span vector as simulated time accumulates.
 */
struct ZeroAllocRig
{
    Clock clock;
    shm::ShmArena arena{1 << 20};
    gpu::Device device{gpu::DeviceSpec::a100()};
    channel::Channel chan{channel::Kind::Netlink, clock};
    remote::LakeDaemon daemon{chan, arena, device, clock};
    bool pump = true;
    remote::LakeLib lib{chan, arena, [this] {
                            if (pump)
                                daemon.processPending();
                        }};
};

TEST(PipelineZeroAllocTest, SteadyStateSendPathDoesNotAllocate)
{
    // Capture-free body/cost so the kernel itself cannot allocate.
    gpu::KernelRegistry::global().add(
        "pipe_noop",
        [](gpu::Device &, const gpu::LaunchConfig &) {
            return CuResult::Success;
        },
        [](const gpu::Device &, const gpu::LaunchConfig &) -> Nanos {
            return 0;
        });

    ZeroAllocRig rig;
    PipelineConfig p;
    p.enabled = true;
    p.max_batch = 16;
    rig.lib.setPipeline(p);

    gpu::DevicePtr dev = 0;
    ASSERT_EQ(rig.lib.cuMemAlloc(&dev, 64), CuResult::Success);
    shm::ShmOffset stage = rig.arena.alloc(64);
    std::memset(rig.arena.at(stage), 0x5a, 64);
    gpu::LaunchConfig launch;
    launch.kernel = "pipe_noop";

    // Warm up: grows the encoder scratch, the channel buffer pool and
    // the daemon's scratch to steady-state capacity.
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 12; ++i)
            ASSERT_EQ(rig.lib.cuLaunchKernel(launch, 0),
                      CuResult::Success);
        for (int i = 0; i < 4; ++i)
            ASSERT_EQ(rig.lib.cuMemcpyHtoDShmAsync(dev, stage, 64, 0),
                      CuResult::Success);
    }
    ASSERT_EQ(rig.lib.cuStreamSynchronize(0), CuResult::Success);
    ASSERT_EQ(rig.lib.pendingBatched(), 0u);

    // Strict check: 15 steady-state enqueues (one short of the flush
    // threshold) must perform ZERO heap allocations — the per-command
    // cost of the pipelined send path.
    g_allocs.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    for (int i = 0; i < 12; ++i)
        rig.lib.cuLaunchKernel(launch, 0);
    for (int i = 0; i < 3; ++i)
        rig.lib.cuMemcpyHtoDShmAsync(dev, stage, 64, 0);
    g_count_allocs.store(false, std::memory_order_relaxed);
    EXPECT_EQ(rig.lib.pendingBatched(), 15u);
    EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u);

    // Per-batch check: completing the batch — the flush, the pooled-
    // buffer channel send — stays allocation-free too. The doorbell is
    // muted so lakeD's dispatch (which may grow its busy-span log) is
    // outside the window; the message waits in the channel.
    rig.pump = false;
    g_allocs.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    rig.lib.cuLaunchKernel(launch, 0); // 16th command: triggers flush
    g_count_allocs.store(false, std::memory_order_relaxed);
    EXPECT_EQ(rig.lib.pendingBatched(), 0u);
    // The encoder and the message buffer are recycled capacity (zero
    // allocs); the one tolerated allocation is a deque node page the
    // channel queue may add when the push lands on a node boundary —
    // amortized over many batches, not a per-command or even a
    // per-batch cost.
    EXPECT_LE(g_allocs.load(std::memory_order_relaxed), 1u);

    // The muted batch is intact: pump it and confirm all 16 commands
    // of this round executed (the daemon side is correct, merely not
    // part of the send-path measurement).
    rig.pump = true;
    std::uint64_t before = rig.device.launches();
    rig.daemon.processPending();
    EXPECT_EQ(rig.device.launches() - before, 13u);
    EXPECT_EQ(rig.lib.cuStreamSynchronize(0), CuResult::Success);
}

} // namespace
} // namespace lake
