// Tests for AES, AES-GCM (against NIST vectors) and the cipher engines.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/lake.h"
#include "crypto/aes.h"
#include "crypto/engines.h"
#include "crypto/gcm.h"

namespace lake::crypto {
namespace {

std::vector<std::uint8_t>
fromHex(const std::string &hex)
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
        out.push_back(static_cast<std::uint8_t>(
            std::stoi(hex.substr(i, 2), nullptr, 16)));
    }
    return out;
}

std::string
toHex(const std::uint8_t *data, std::size_t n)
{
    static const char *digits = "0123456789abcdef";
    std::string out;
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(digits[data[i] >> 4]);
        out.push_back(digits[data[i] & 0xf]);
    }
    return out;
}

TEST(AesTest, Fips197Aes128Vector)
{
    auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    auto plain = fromHex("00112233445566778899aabbccddeeff");
    Aes aes(key.data(), key.size());
    EXPECT_EQ(aes.rounds(), 10);

    std::uint8_t out[16];
    aes.encryptBlock(plain.data(), out);
    EXPECT_EQ(toHex(out, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesTest, Fips197Aes256Vector)
{
    auto key = fromHex("000102030405060708090a0b0c0d0e0f"
                       "101112131415161718191a1b1c1d1e1f");
    auto plain = fromHex("00112233445566778899aabbccddeeff");
    Aes aes(key.data(), key.size());
    EXPECT_EQ(aes.rounds(), 14);

    std::uint8_t out[16];
    aes.encryptBlock(plain.data(), out);
    EXPECT_EQ(toHex(out, 16), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(AesTest, InPlaceEncryptionIsSafe)
{
    auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    Aes aes(key.data(), key.size());
    auto buf = fromHex("00112233445566778899aabbccddeeff");
    aes.encryptBlock(buf.data(), buf.data());
    EXPECT_EQ(toHex(buf.data(), 16),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(GcmTest, NistTestCase3NoAad)
{
    // NIST GCM spec, test case 3 (AES-128, 96-bit IV, 64-byte text).
    auto key = fromHex("feffe9928665731c6d6a8f9467308308");
    auto iv = fromHex("cafebabefacedbaddecaf888");
    auto plain = fromHex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b391aafd255");
    auto expect_ct = fromHex(
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091473f5985");

    AesGcm gcm(key.data(), key.size());
    std::vector<std::uint8_t> cipher(plain.size());
    std::uint8_t tag[16];
    gcm.encrypt(iv.data(), plain.data(), plain.size(), nullptr, 0,
                cipher.data(), tag);
    EXPECT_EQ(cipher, expect_ct);
    EXPECT_EQ(toHex(tag, 16), "4d5c2af327cd64a62cf35abd2ba6fab4");

    std::vector<std::uint8_t> recovered(plain.size());
    EXPECT_TRUE(gcm.decrypt(iv.data(), cipher.data(), cipher.size(),
                            nullptr, 0, tag, recovered.data()));
    EXPECT_EQ(recovered, plain);
}

TEST(GcmTest, NistTestCase4WithAad)
{
    auto key = fromHex("feffe9928665731c6d6a8f9467308308");
    auto iv = fromHex("cafebabefacedbaddecaf888");
    auto plain = fromHex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39");
    auto aad = fromHex("feedfacedeadbeeffeedfacedeadbeefabaddad2");

    AesGcm gcm(key.data(), key.size());
    std::vector<std::uint8_t> cipher(plain.size());
    std::uint8_t tag[16];
    gcm.encrypt(iv.data(), plain.data(), plain.size(), aad.data(),
                aad.size(), cipher.data(), tag);
    EXPECT_EQ(toHex(tag, 16), "5bc94fbc3221a5db94fae95ae7121a47");
    EXPECT_EQ(toHex(cipher.data(), 16),
              "42831ec2217774244b7221b784d0d49c");
}

TEST(GcmTest, TamperedCiphertextFailsAndZeroes)
{
    auto key = fromHex("feffe9928665731c6d6a8f9467308308");
    auto iv = fromHex("cafebabefacedbaddecaf888");
    std::vector<std::uint8_t> plain(100, 0x5a);

    AesGcm gcm(key.data(), key.size());
    std::vector<std::uint8_t> cipher(plain.size());
    std::uint8_t tag[16];
    gcm.encrypt(iv.data(), plain.data(), plain.size(), nullptr, 0,
                cipher.data(), tag);

    cipher[50] ^= 1;
    std::vector<std::uint8_t> out(plain.size(), 0xff);
    EXPECT_FALSE(gcm.decrypt(iv.data(), cipher.data(), cipher.size(),
                             nullptr, 0, tag, out.data()));
    for (std::uint8_t b : out)
        EXPECT_EQ(b, 0); // unverified plaintext is never released
}

TEST(GcmTest, TamperedTagFails)
{
    auto key = fromHex("feffe9928665731c6d6a8f9467308308");
    auto iv = fromHex("cafebabefacedbaddecaf888");
    std::vector<std::uint8_t> plain(64, 1);
    AesGcm gcm(key.data(), key.size());
    std::vector<std::uint8_t> cipher(64);
    std::uint8_t tag[16];
    gcm.encrypt(iv.data(), plain.data(), 64, nullptr, 0, cipher.data(),
                tag);
    tag[0] ^= 0x80;
    std::vector<std::uint8_t> out(64);
    EXPECT_FALSE(gcm.decrypt(iv.data(), cipher.data(), 64, nullptr, 0,
                             tag, out.data()));
}

class GcmSizeTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(GcmSizeTest, RoundTripArbitrarySizes)
{
    std::size_t n = GetParam();
    auto key = fromHex("000102030405060708090a0b0c0d0e0f"
                       "101112131415161718191a1b1c1d1e1f");
    std::uint8_t iv[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};

    std::vector<std::uint8_t> plain(n);
    for (std::size_t i = 0; i < n; ++i)
        plain[i] = static_cast<std::uint8_t>(i * 13 + 7);

    AesGcm gcm(key.data(), key.size());
    std::vector<std::uint8_t> cipher(n), out(n);
    std::uint8_t tag[16];
    gcm.encrypt(iv, plain.data(), n, nullptr, 0, cipher.data(), tag);
    ASSERT_TRUE(
        gcm.decrypt(iv, cipher.data(), n, nullptr, 0, tag, out.data()));
    EXPECT_EQ(out, plain);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmSizeTest,
                         ::testing::Values(1, 15, 16, 17, 31, 33, 100,
                                           4096, 65536));

// ---- engines ----------------------------------------------------------

class EnginesTest : public ::testing::Test
{
  protected:
    EnginesTest()
    {
        for (int i = 0; i < 32; ++i)
            key_[i] = static_cast<std::uint8_t>(i * 3 + 1);
        for (int i = 0; i < 12; ++i)
            iv_[i] = static_cast<std::uint8_t>(i);
    }

    core::Lake lake_;
    std::uint8_t key_[32];
    std::uint8_t iv_[12];
};

TEST_F(EnginesTest, AllEnginesProduceIdenticalCiphertext)
{
    gpu::CpuSpec cpu = gpu::CpuSpec::xeonGold6226R();
    CpuCipher sw(key_, 32, lake_.clock(), cpu);
    AesNiCipher ni(key_, 32, lake_.clock(), cpu);
    LakeGpuCipher gpu_eng(key_, 32, lake_.lib(), 1 << 16);

    std::vector<std::uint8_t> plain(10000);
    for (std::size_t i = 0; i < plain.size(); ++i)
        plain[i] = static_cast<std::uint8_t>(i);

    std::vector<std::uint8_t> c1(plain.size()), c2(plain.size()),
        c3(plain.size());
    std::uint8_t t1[16], t2[16], t3[16];
    sw.encryptExtent(iv_, plain.data(), plain.size(), c1.data(), t1);
    ni.encryptExtent(iv_, plain.data(), plain.size(), c2.data(), t2);
    gpu_eng.encryptExtent(iv_, plain.data(), plain.size(), c3.data(), t3);

    EXPECT_EQ(c1, c2);
    EXPECT_EQ(c1, c3);
    EXPECT_EQ(std::memcmp(t1, t2, 16), 0);
    EXPECT_EQ(std::memcmp(t1, t3, 16), 0);

    // Cross-engine decrypt: GPU ciphertext through the CPU engine.
    std::vector<std::uint8_t> out(plain.size());
    EXPECT_TRUE(sw.decryptExtent(iv_, c3.data(), c3.size(), t3,
                                 out.data()));
    EXPECT_EQ(out, plain);
}

TEST_F(EnginesTest, ThroughputOrderingAtLargeExtents)
{
    gpu::CpuSpec cpu = gpu::CpuSpec::xeonGold6226R();
    CpuCipher sw(key_, 32, lake_.clock(), cpu);
    AesNiCipher ni(key_, 32, lake_.clock(), cpu);
    LakeGpuCipher gpu_eng(key_, 32, lake_.lib(), 2 << 20);

    std::vector<std::uint8_t> plain(2 << 20);
    std::vector<std::uint8_t> cipher(plain.size());
    std::uint8_t tag[16];

    auto time_encrypt = [&](CipherEngine &e) {
        Nanos t0 = lake_.clock().now();
        e.encryptExtent(iv_, plain.data(), plain.size(), cipher.data(),
                        tag);
        return lake_.clock().now() - t0;
    };

    Nanos sw_t = time_encrypt(sw);
    Nanos ni_t = time_encrypt(ni);
    Nanos gpu_t = time_encrypt(gpu_eng);
    // Fig. 14's ordering at 2 MiB blocks: CPU slowest, GPU fastest.
    EXPECT_GT(sw_t, ni_t);
    EXPECT_GT(ni_t, gpu_t);
}

TEST_F(EnginesTest, GpuDecryptDetectsTamper)
{
    LakeGpuCipher gpu_eng(key_, 16, lake_.lib(), 4096);
    std::vector<std::uint8_t> plain(1000, 0x42), cipher(1000), out(1000);
    std::uint8_t tag[16];
    gpu_eng.encryptExtent(iv_, plain.data(), plain.size(), cipher.data(),
                          tag);
    cipher[0] ^= 1;
    EXPECT_FALSE(gpu_eng.decryptExtent(iv_, cipher.data(), cipher.size(),
                                       tag, out.data()));
    for (std::uint8_t b : out)
        EXPECT_EQ(b, 0);
}

TEST_F(EnginesTest, HybridRoundTripAndTamper)
{
    gpu::CpuSpec cpu = gpu::CpuSpec::xeonGold6226R();
    HybridCipher hybrid(key_, 32, lake_.lib(), lake_.clock(), cpu,
                        1 << 20);

    std::vector<std::uint8_t> plain(300000);
    for (std::size_t i = 0; i < plain.size(); ++i)
        plain[i] = static_cast<std::uint8_t>(i * 7);
    std::vector<std::uint8_t> cipher(plain.size()), out(plain.size());
    std::uint8_t tag[16];

    hybrid.encryptExtent(iv_, plain.data(), plain.size(), cipher.data(),
                         tag);
    ASSERT_TRUE(hybrid.decryptExtent(iv_, cipher.data(), cipher.size(),
                                     tag, out.data()));
    EXPECT_EQ(out, plain);

    cipher[123] ^= 1;
    EXPECT_FALSE(hybrid.decryptExtent(iv_, cipher.data(), cipher.size(),
                                      tag, out.data()));
}

TEST_F(EnginesTest, HybridFasterThanAesNiAlone)
{
    gpu::CpuSpec cpu = gpu::CpuSpec::xeonGold6226R();
    AesNiCipher ni(key_, 32, lake_.clock(), cpu);
    HybridCipher hybrid(key_, 32, lake_.lib(), lake_.clock(), cpu,
                        4 << 20);

    std::vector<std::uint8_t> plain(4 << 20), cipher(4 << 20);
    std::uint8_t tag[16];

    Nanos t0 = lake_.clock().now();
    ni.encryptExtent(iv_, plain.data(), plain.size(), cipher.data(), tag);
    Nanos ni_t = lake_.clock().now() - t0;

    t0 = lake_.clock().now();
    hybrid.encryptExtent(iv_, plain.data(), plain.size(), cipher.data(),
                         tag);
    Nanos hybrid_t = lake_.clock().now() - t0;
    EXPECT_LT(hybrid_t, ni_t);
}

} // namespace
} // namespace lake::crypto
